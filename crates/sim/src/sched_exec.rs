//! The cycle-accurate VLIW executor: run the *scheduled code*, not just
//! the loop semantics.
//!
//! Every other executor in this crate answers "does the transformed loop
//! compute the right values?". This one answers the question the paper's
//! tables hinge on: **does the scheduled code actually sustain the
//! initiation interval the scheduler claims?** It consumes the flat
//! prologue / kernel / epilogue layout ([`sv_modsched::emit_flat_for`])
//! and executes it the way the VLIW machine would:
//!
//! * **per-cycle issue** — every operation instance in a row issues in
//!   the same cycle, one row per cycle;
//! * **interlock semantics** — a row only issues when every operand is
//!   *delivered* (producer issued ≥ `latency` cycles earlier; latency-0
//!   producers forward within the row) and every required unit is free;
//!   otherwise the machine stalls for a cycle and the stall is counted.
//!   A correct schedule never stalls — a nonzero stall count or a
//!   measured steady-state above II is a scheduler/emitter bug made
//!   visible;
//! * **end-of-cycle writes** — reads in cycle `t` observe values as of
//!   the start of `t`: loads execute before same-cycle arithmetic, stores
//!   commit last, and a result with latency `L` issued at cycle `c` is
//!   readable from cycle `c + L` on;
//! * **unit reservations** — each instance occupies one unit of every
//!   class its opcode requires ([`sv_machine::MachineConfig`]'s
//!   `requirements`), for `latency` consecutive cycles when the unit is
//!   non-pipelined (divide/sqrt), and the kernel's loop-control overhead
//!   (back branch in row `II−1`, counter update in row 0) is charged
//!   exactly as the scheduler reserved it;
//! * **modulo variable expansion** — loop-carried values are renamed per
//!   iteration in ring buffers whose depths are measured from the actual
//!   launch order (the same prescan the flat functional executor uses),
//!   so the three sections' different `iteration_offset` encodings all
//!   resolve to the right register copy.
//!
//! The measured steady state is reported per section:
//! [`ExecReport::kernel_cycles`] over [`ExecReport::kernel_executions`]
//! is the **measured II**, compared against the scheduled II by
//! [`ExecReport::steady_state_ok`].

use crate::decoded::{collect_liveouts, exec_op, DClass, DecodedLoop, DOperand};
use crate::interp::LiveOutValue;
use crate::memory::{Memory, Scalar};
use std::fmt;
use sv_machine::{MachineConfig, ResourceClass};
use sv_modsched::FlatListing;

/// Cycle accounting of one scheduled execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Total cycles from the first issue row to the last, inclusive —
    /// rows plus stalls (trailing all-empty epilogue rows are not
    /// walked; in-flight latency past the last issue row is not counted,
    /// matching the `(n−1)·II + length` timing-model convention).
    pub total_cycles: u64,
    /// Cycles the interlock inserted because an operand was not yet
    /// delivered or a unit was still busy. Zero for a correct schedule.
    pub stall_cycles: u64,
    /// Cycles spent in the kernel section (including any stalls there).
    pub kernel_cycles: u64,
    /// How many times the kernel's `II` rows were executed.
    pub kernel_executions: u64,
    /// The largest number of simultaneously live values observed in any
    /// cycle, per register class in [`sv_ir::RegClass::ALL`] order. A
    /// value is live from its issue cycle to its last read (half-open:
    /// a register read and overwritten in the same cycle counts once,
    /// matching the scheduler's `⌈lifetime/II⌉` model); values no row
    /// reads hold their register for the producer latency, and a
    /// live-out's final instance stays live to the end of the run. Must
    /// never exceed the scheduler's `MaxLive` estimate — an excess is an
    /// under-allocation bug surfaced by [`crate::executed_selfcheck`].
    pub observed_max_live: [u32; 4],
}

impl ExecReport {
    /// Measured steady-state cycles per kernel execution, when the
    /// kernel ran at all (`None` for short trips that never fill the
    /// pipeline).
    pub fn measured_ii(&self) -> Option<f64> {
        (self.kernel_executions > 0)
            .then(|| self.kernel_cycles as f64 / self.kernel_executions as f64)
    }

    /// Whether the execution sustained the scheduled II: no stalls
    /// anywhere, and the kernel section took exactly
    /// `kernel_executions · II` cycles. Vacuously true when the kernel
    /// never ran (short trips).
    pub fn steady_state_ok(&self, scheduled_ii: u32) -> bool {
        self.stall_cycles == 0
            && self.kernel_cycles == self.kernel_executions * u64::from(scheduled_ii)
    }
}

/// A defect the executor found in the scheduled code. Stalls are *not*
/// errors (they are reported); these are violations no amount of
/// stalling can repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An instance reads a value that no earlier row produces — the
    /// layout launches instances out of dependence order.
    ReadBeforeWrite {
        /// Loop name.
        looop: String,
        /// Consuming op index.
        op: usize,
        /// Consuming instance's iteration.
        iteration: u64,
        /// Issue cycle of the consuming row.
        cycle: u64,
    },
    /// A consumer shares its producer's issue cycle but the producer has
    /// nonzero latency — stalling delays both, so the read can never
    /// become legal.
    SameCycleLatency {
        /// Loop name.
        looop: String,
        /// Producing op index.
        producer: usize,
        /// Consuming op index.
        consumer: usize,
        /// The shared issue cycle.
        cycle: u64,
        /// The producer's result latency.
        latency: u32,
    },
    /// The interlock stalled past any bound a finite-latency machine can
    /// justify (defensive: unreachable for well-formed layouts).
    Wedged {
        /// Loop name.
        looop: String,
        /// Cycle the executor gave up at.
        cycle: u64,
        /// The last stall reason observed.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ReadBeforeWrite { looop, op, iteration, cycle } => write!(
                f,
                "{looop}: op{op} iteration {iteration} at cycle {cycle} reads a value no earlier row produces"
            ),
            ExecError::SameCycleLatency { looop, producer, consumer, cycle, latency } => {
                write!(
                    f,
                    "{looop}: op{consumer} issues with its producer op{producer} at cycle {cycle}, but the producer's latency is {latency}"
                )
            }
            ExecError::Wedged { looop, cycle, detail } => {
                write!(f, "{looop}: executor wedged at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Which of the three layout sections a row belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sect {
    Prologue,
    Kernel,
    Epilogue,
}

/// One planned issue row: its section, its row index within the kernel
/// (for loop-control overhead), and the `(op, local iteration)`
/// instances it launches.
struct PlanRow {
    sect: Sect,
    krow: u32,
    ops: Vec<(usize, u64)>,
}

/// Decode a flat layout into the full row-per-cycle issue plan for `n`
/// local iterations, resolving each section's `iteration_offset`
/// encoding to plain iteration numbers.
fn build_plan(flat: &FlatListing, n: u64) -> Vec<PlanRow> {
    let sc = u64::from(flat.stage_count);
    let kernel_execs = flat.kernel_executions(n);
    let mut plan: Vec<PlanRow> = Vec::new();
    for row in &flat.prologue {
        plan.push(PlanRow {
            sect: Sect::Prologue,
            krow: 0,
            ops: row.iter().map(|&(op, j)| (op.index(), j)).collect(),
        });
    }
    for t in 0..kernel_execs {
        for (k, row) in flat.kernel.iter().enumerate() {
            plan.push(PlanRow {
                sect: Sect::Kernel,
                krow: k as u32,
                ops: row
                    .iter()
                    .map(|&(op, stage)| (op.index(), t + (sc - 1) - stage))
                    .collect(),
            });
        }
    }
    for row in &flat.epilogue {
        plan.push(PlanRow {
            sect: Sect::Epilogue,
            krow: 0,
            ops: row.iter().map(|&(op, back)| (op.index(), n - 1 - back)).collect(),
        });
    }
    // The epilogue array spans `(SC−1)·II` rows regardless of where its
    // last instance sits; a real code generator emits nothing past it.
    while matches!(plan.last(), Some(r) if r.sect == Sect::Epilogue && r.ops.is_empty()) {
        plan.pop();
    }
    plan
}

/// Execute iterations `iters` of `l` through the scheduled layout `flat`
/// on machine `m`, mutating `mem`; returns the live-outs and the cycle
/// accounting. The layout's local iteration `j` is absolute iteration
/// `iters.start + j` for memory addressing and induction variables
/// (cleanup loops run subranges), and `flat` must have been emitted for
/// exactly `iters.len()` iterations when truncated.
///
/// # Errors
///
/// Returns an [`ExecError`] when the layout violates dependence order or
/// latency in a way no stall can repair. Capacity conflicts and undeli-
/// vered operands that *can* resolve are handled by stalling and show up
/// in [`ExecReport::stall_cycles`] instead.
///
/// # Panics
///
/// Panics when `flat` does not fit `l` or the trip count (same contracts
/// as [`crate::execute_flat`]).
pub fn execute_schedule(
    l: &sv_ir::Loop,
    m: &MachineConfig,
    flat: &FlatListing,
    mem: &mut Memory,
    iters: std::ops::Range<u64>,
) -> Result<(Vec<LiveOutValue>, ExecReport), ExecError> {
    let n = iters.end.saturating_sub(iters.start);
    let d = DecodedLoop::new(l);
    let plan = build_plan(flat, n);
    let nops = d.ops.len();

    // Per-op machine model: result latency and unit requirements.
    let lat: Vec<u64> = l.ops.iter().map(|op| u64::from(m.latency(op.opcode))).collect();
    let reqs: Vec<Vec<sv_machine::Reservation>> =
        l.ops.iter().map(|op| m.requirements(op.opcode)).collect();
    let overhead = m.loop_overhead();
    let pool = m.resource_pool();
    let n_classes = ResourceClass::ALL.len();

    // Ring depths measured from the actual launch order — the same
    // prescan as `decoded::run_sequence`, so carried state is renamed
    // (modulo variable expansion) exactly deep enough for this layout.
    let mut depth = vec![1u64; nops];
    {
        let mut latest = vec![i64::MIN; nops];
        for row in &plan {
            // Writes first: within a row this executor's phase order
            // (loads, forwarded arithmetic, stores) is not op order, so a
            // read of an older iteration must survive *any* same-row
            // overwrite — treat every write as landing before the row's
            // reads. (A read of the row's own iteration still shares the
            // slot: `latest > need` is strict, and the forwarding pass
            // guarantees the producer runs first.)
            for &(oi, j) in &row.ops {
                if d.ops[oi].defines {
                    if latest[oi] != i64::MIN && (j as i64) <= latest[oi] {
                        depth[oi] = depth[oi].max((latest[oi] - j as i64 + 2) as u64);
                    }
                    latest[oi] = latest[oi].max(j as i64);
                }
            }
            for &(oi, j) in &row.ops {
                let op = &d.ops[oi];
                for o in &d.operands[op.o_start as usize..op.o_end as usize] {
                    if let DOperand::Def { op: p, distance } = *o {
                        let p = p as usize;
                        let need = j as i64 - i64::from(distance);
                        if need >= 0 && latest[p] > need {
                            depth[p] = depth[p].max((latest[p] - need + 1) as u64);
                        }
                    }
                }
            }
        }
    }
    // `iteration_private` arrays rename per in-flight iteration, same as
    // the register rings (the dependence graph carries no cross-iteration
    // edges on them — see `crate::privrot`). The access order for the
    // prescan is the executor's phase order: a row's loads all fire
    // before its stores.
    let pr = crate::privrot::PrivRot::for_accesses(
        l,
        plan.iter().flat_map(|row| {
            let mem_of = |&(oi, j): &(usize, u64)| {
                l.ops[oi].mem.as_ref().map(|r| (j, r.array.0, !d.ops[oi].defines))
            };
            let loads = row.ops.iter().filter(|&&(oi, _)| d.ops[oi].class == DClass::Load);
            let stores = row.ops.iter().filter(|&&(oi, _)| d.ops[oi].class == DClass::Store);
            loads.filter_map(mem_of).chain(stores.filter_map(mem_of)).collect::<Vec<_>>()
        }),
    );
    pr.widen(mem);

    let mut bases = vec![0usize; nops];
    let mut ready_bases = vec![0usize; nops];
    let (mut ring_len, mut ready_len) = (0usize, 0usize);
    for (i, op) in d.ops.iter().enumerate() {
        bases[i] = ring_len;
        ready_bases[i] = ready_len;
        if op.defines {
            ring_len += depth[i] as usize * op.lanes as usize;
            ready_len += depth[i] as usize;
        }
    }

    let mut ring = vec![Scalar::I(0); ring_len];
    // Delivery cycle of the value currently held by each ring slot.
    let mut ready = vec![0u64; ready_len];
    // Register-pressure probe: the [`sv_ir::RegClass::ALL`] index of each
    // defining op's result, the lifetime of the instance each ring slot
    // currently holds, and the committed lifetime intervals swept at the
    // end for the observed per-class maxima.
    let reg_slot: Vec<usize> = l
        .ops
        .iter()
        .map(|op| {
            if !op.defines_value() {
                return 0;
            }
            let c = op.opcode.def_class();
            sv_ir::RegClass::ALL.iter().position(|&x| x == c).expect("class indexed")
        })
        .collect();
    let mut slot_birth = vec![0u64; ready_len];
    let mut slot_death = vec![0u64; ready_len];
    let mut slot_iter = vec![i64::MIN; ready_len];
    // Committed lifetimes land in per-cycle delta buckets (+1 at birth,
    // −1 at death) and a single prefix sweep at the end recovers the
    // per-class maxima — O(1) per interval and O(cycles) total, never a
    // sort over every instance.
    let mut press_delta: Vec<[i32; 4]> = Vec::new();
    let commit_span = |delta: &mut Vec<[i32; 4]>, b: u64, dth: u64, c: usize| {
        if dth <= b {
            return;
        }
        let end = dth as usize;
        if delta.len() <= end {
            delta.resize(end + 1, [0i32; 4]);
        }
        delta[b as usize][c] += 1;
        delta[end][c] -= 1;
    };
    let mut scratch = vec![Scalar::I(0); d.max_lanes];
    let mut produced_up_to = vec![i64::MIN; nops];
    // One unit-busy horizon per pool instance (non-pipelined reservations
    // hold their unit for `latency` cycles).
    let mut busy_until = vec![0u64; pool.len()];

    let max_lat = lat.iter().copied().max().unwrap_or(0);
    let stall_bound =
        u64::from(flat.ii) * u64::from(flat.stage_count) + max_lat + 64;

    let mut cycle = 0u64;
    let mut report = ExecReport::default();
    let mut class_need = vec![0u32; n_classes];
    let mut in_row_done: Vec<bool> = Vec::new();

    for row in &plan {
        // --- interlock: stall until the row can issue -------------------
        let mut stalled_here = 0u64;
        'issue: loop {
            let mut stall_reason: Option<String> = None;
            // Operand delivery. A read of (p, need) must name either the
            // carried init, a delivered earlier result, or a latency-0
            // producer in this very row.
            'check: for &(oi, j) in &row.ops {
                let op = &d.ops[oi];
                for o in &d.operands[op.o_start as usize..op.o_end as usize] {
                    let DOperand::Def { op: p, distance } = *o else { continue };
                    let p = p as usize;
                    if u64::from(distance) > j {
                        continue; // reads the carried init
                    }
                    let need = j - u64::from(distance);
                    if row.ops.iter().any(|&(ri, rj)| ri == p && rj == need) {
                        if lat[p] == 0 {
                            continue; // same-row forwarding
                        }
                        return Err(ExecError::SameCycleLatency {
                            looop: l.name.clone(),
                            producer: p,
                            consumer: oi,
                            cycle,
                            latency: lat[p] as u32,
                        });
                    }
                    if produced_up_to[p] < need as i64 {
                        // Rows issue in order: a producer not yet issued
                        // and not in this row can only be in a later row.
                        return Err(ExecError::ReadBeforeWrite {
                            looop: l.name.clone(),
                            op: oi,
                            iteration: j,
                            cycle,
                        });
                    }
                    let rot = (need % depth[p]) as usize;
                    let at = ready_bases[p] + rot;
                    if ready[at] > cycle {
                        stall_reason = Some(format!(
                            "op{oi} iter {j} waits for op{p} iter {need} (ready at {})",
                            ready[at]
                        ));
                        break 'check;
                    }
                }
            }
            // Unit capacity: per class, requested units must not exceed
            // the units free this cycle.
            if stall_reason.is_none() {
                class_need.iter_mut().for_each(|c| *c = 0);
                for &(oi, _) in &row.ops {
                    for r in &reqs[oi] {
                        class_need[r.class as usize] += 1;
                    }
                }
                if row.sect == Sect::Kernel {
                    // Loop-control overhead where the scheduler reserved
                    // it: back branch in row II−1, counter update in row 0.
                    for (idx, oh) in overhead.iter().enumerate() {
                        let at = if idx == 0 { flat.ii - 1 } else { 0 };
                        if row.krow == at {
                            for r in oh {
                                class_need[r.class as usize] += 1;
                            }
                        }
                    }
                }
                for (ci, &needed) in class_need.iter().enumerate() {
                    if needed == 0 {
                        continue;
                    }
                    let range = pool.alternative_range(ResourceClass::ALL[ci]);
                    let free =
                        busy_until[range].iter().filter(|&&b| b <= cycle).count() as u32;
                    if needed > free {
                        stall_reason = Some(format!(
                            "{needed} {:?} unit(s) requested, {free} free",
                            ResourceClass::ALL[ci]
                        ));
                        break;
                    }
                }
            }
            match stall_reason {
                None => break 'issue,
                Some(reason) => {
                    stalled_here += 1;
                    if stalled_here > stall_bound {
                        return Err(ExecError::Wedged {
                            looop: l.name.clone(),
                            cycle,
                            detail: reason,
                        });
                    }
                    report.stall_cycles += 1;
                    if row.sect == Sect::Kernel {
                        report.kernel_cycles += 1;
                    }
                    cycle += 1;
                }
            }
        }

        // --- issue: reserve units ---------------------------------------
        let reserve = |busy_until: &mut [u64], rs: &[sv_machine::Reservation]| {
            for r in rs {
                let range = pool.alternative_range(r.class);
                let slot = busy_until[range]
                    .iter()
                    .position(|&b| b <= cycle)
                    .expect("capacity was just checked");
                busy_until[pool.alternative_range(r.class).start + slot] =
                    cycle + u64::from(r.cycles);
            }
        };
        for &(oi, _) in &row.ops {
            reserve(&mut busy_until, &reqs[oi]);
        }
        if row.sect == Sect::Kernel {
            for (idx, oh) in overhead.iter().enumerate() {
                let at = if idx == 0 { flat.ii - 1 } else { 0 };
                if row.krow == at {
                    reserve(&mut busy_until, oh);
                }
            }
        }

        // --- execute: loads, then forwarding-ordered arithmetic, then
        // stores — reads in this cycle observe start-of-cycle memory and
        // only delivered (or latency-0 same-row) register values.
        in_row_done.clear();
        in_row_done.resize(row.ops.len(), false);
        let finish =
            |oi: usize,
             j: u64,
             ring: &mut Vec<Scalar>,
             ready: &mut Vec<u64>,
             mem: &mut Memory,
             scratch: &mut Vec<Scalar>,
             produced_up_to: &mut Vec<i64>| {
                let op = &d.ops[oi];
                let abs = (iters.start + j) as i64;
                let resolve = |p: usize, dist: u32| -> Option<usize> {
                    if u64::from(dist) > j {
                        return None;
                    }
                    let need = j - u64::from(dist);
                    let rot = if depth[p] == 1 { 0 } else { (need % depth[p]) as usize };
                    Some(bases[p] + rot * d.ops[p].lanes as usize)
                };
                if exec_op(&d, op, abs, mem, ring, scratch, resolve, |a| pr.offset(a, j)) {
                    let ln = op.lanes as usize;
                    let rot = (j % depth[oi]) as usize;
                    let slot = bases[oi] + rot * ln;
                    if ln == 1 {
                        ring[slot] = scratch[0];
                    } else {
                        ring[slot..slot + ln].copy_from_slice(&scratch[..ln]);
                    }
                    ready[ready_bases[oi] + rot] = cycle + lat[oi];
                    produced_up_to[oi] = produced_up_to[oi].max(j as i64);
                }
            };
        for (ri, &(oi, j)) in row.ops.iter().enumerate() {
            if d.ops[oi].class == DClass::Load {
                finish(oi, j, &mut ring, &mut ready, mem, &mut scratch, &mut produced_up_to);
                in_row_done[ri] = true;
            }
        }
        loop {
            let mut progressed = false;
            let mut remaining = false;
            for (ri, &(oi, j)) in row.ops.iter().enumerate() {
                if in_row_done[ri] || matches!(d.ops[oi].class, DClass::Store) {
                    continue;
                }
                let op = &d.ops[oi];
                let deps_met = d.operands[op.o_start as usize..op.o_end as usize]
                    .iter()
                    .all(|o| {
                        let DOperand::Def { op: p, distance } = *o else { return true };
                        let p = p as usize;
                        if u64::from(distance) > j {
                            return true;
                        }
                        let need = j - u64::from(distance);
                        // Only a same-row producer can be pending here.
                        match row.ops.iter().position(|&(ri2, rj)| {
                            ri2 == p && rj == need
                        }) {
                            Some(pri) => in_row_done[pri],
                            None => true,
                        }
                    });
                if deps_met {
                    finish(
                        oi,
                        j,
                        &mut ring,
                        &mut ready,
                        mem,
                        &mut scratch,
                        &mut produced_up_to,
                    );
                    in_row_done[ri] = true;
                    progressed = true;
                } else {
                    remaining = true;
                }
            }
            if !remaining {
                break;
            }
            if !progressed {
                return Err(ExecError::Wedged {
                    looop: l.name.clone(),
                    cycle,
                    detail: "same-row latency-0 forwarding cycle".into(),
                });
            }
        }
        for (ri, &(oi, j)) in row.ops.iter().enumerate() {
            if !in_row_done[ri] {
                debug_assert!(matches!(d.ops[oi].class, DClass::Store));
                finish(oi, j, &mut ring, &mut ready, mem, &mut scratch, &mut produced_up_to);
            }
        }

        // --- register-pressure probe: this row's births and reads -------
        // Births first (committing each slot's previous occupant), then
        // reads extend the occupant's lifetime to this cycle — half-open,
        // so a value whose last read shares a cycle with a birth frees
        // its register for that birth, matching the scheduler's
        // `⌈lifetime/II⌉` counting.
        for &(oi, j) in &row.ops {
            if !d.ops[oi].defines {
                continue;
            }
            let rot = if depth[oi] == 1 { 0 } else { (j % depth[oi]) as usize };
            let at = ready_bases[oi] + rot;
            if slot_iter[at] != i64::MIN {
                commit_span(&mut press_delta, slot_birth[at], slot_death[at], reg_slot[oi]);
            }
            slot_birth[at] = cycle;
            slot_death[at] = cycle + lat[oi];
            slot_iter[at] = j as i64;
        }
        for &(oi, j) in &row.ops {
            let op = &d.ops[oi];
            for o in &d.operands[op.o_start as usize..op.o_end as usize] {
                let DOperand::Def { op: p, distance } = *o else { continue };
                let p = p as usize;
                if u64::from(distance) > j {
                    continue;
                }
                let need = j - u64::from(distance);
                let rot = if depth[p] == 1 { 0 } else { (need % depth[p]) as usize };
                let at = ready_bases[p] + rot;
                if slot_iter[at] == need as i64 {
                    slot_death[at] = slot_death[at].max(cycle);
                }
            }
        }

        report.total_cycles += stalled_here + 1;
        if row.sect == Sect::Kernel {
            report.kernel_cycles += 1;
        }
        cycle += 1;
    }
    report.kernel_executions = flat.kernel_executions(n);
    // Live-out values survive to the end of the run; commit every
    // interval still open and sweep for the observed per-class maxima
    // (deaths sort before tied births: half-open intervals).
    if n > 0 {
        for lo in &l.live_outs {
            let p = lo.op.index();
            let need = n - 1;
            let at = ready_bases[p] + (need % depth[p]) as usize;
            if slot_iter[at] == need as i64 {
                slot_death[at] = slot_death[at].max(cycle);
            }
        }
    }
    for (i, op) in d.ops.iter().enumerate() {
        if !op.defines {
            continue;
        }
        for rot in 0..depth[i] as usize {
            let at = ready_bases[i] + rot;
            if slot_iter[at] != i64::MIN {
                commit_span(&mut press_delta, slot_birth[at], slot_death[at], reg_slot[i]);
            }
        }
    }
    let mut cur = [0i64; 4];
    for deltas in &press_delta {
        for (c, &dlt) in deltas.iter().enumerate() {
            cur[c] += i64::from(dlt);
            report.observed_max_live[c] = report.observed_max_live[c].max(cur[c].max(0) as u32);
        }
    }
    pr.restore(mem, n);

    let outs = collect_liveouts(l, &d, |p, lane| {
        let pop = &d.ops[p];
        if n == 0 {
            return pop.init;
        }
        let need = n - 1;
        assert!(
            produced_up_to[p] >= need as i64,
            "live-out read before write: emission bug"
        );
        let slot = bases[p] + (need % depth[p]) as usize * pop.lanes as usize;
        ring[slot + if pop.lanes == 1 { 0 } else { lane }]
    });
    Ok((outs, report))
}
