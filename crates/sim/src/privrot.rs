//! Per-iteration renaming of `iteration_private` arrays — modulo
//! variable expansion for *memory*.
//!
//! The dependence graph deliberately omits loop-carried edges on
//! iteration-private arrays (the scalar↔vector communication slots the
//! selective vectorizer introduces): their cells carry no values between
//! iterations, so a code generator renames them per pipeline stage and
//! the scheduler is free to overlap iterations that reuse the same slot
//! (see `sv_analysis::DepGraph`). Executors that interleave iterations
//! must therefore implement that renaming, or iteration `j+1`'s store
//! lands in the slot before iteration `j`'s load reads it — exactly the
//! class of silent corruption the cycle-accurate executor surfaced on
//! the wider-vector machines.
//!
//! [`PrivRot`] is the register-ring prescan transplanted to arrays: one
//! linear pass over the memory-access order measures, per private array,
//! the widest window of iterations simultaneously in flight, and the
//! array is temporarily widened to that many back-to-back copies (copy
//! `j mod depth` serves iteration `j`). After the run the copy written
//! by the final iteration is collapsed back into place, so the final
//! memory image is bit-identical to in-order execution. Arrays that are
//! not private — or private arrays whose accesses never overlap — keep
//! depth 1 and the whole mechanism is a no-op.

use crate::memory::Memory;
use sv_ir::{Loop, OpKind};

/// Measured renaming windows for one launch order of one loop.
pub(crate) struct PrivRot {
    /// Per-array copy count; 1 ⇒ identity (not private, or no overlap).
    depth: Vec<u64>,
    /// Per-array declared element count (the size of one copy).
    size: Vec<i64>,
    /// Any array with depth > 1 (fast bail-out for the common case).
    active: bool,
}

impl PrivRot {
    /// Measure renaming depths from an explicit memory-access order:
    /// `(iteration, array, is_store)` triples in execution order. An
    /// access to iteration `j` after a store for iteration `latest > j`
    /// needs copies `j ..= latest` distinct, so `depth ≥ latest − j + 1`.
    pub(crate) fn for_accesses(
        l: &Loop,
        accesses: impl Iterator<Item = (u64, u32, bool)>,
    ) -> PrivRot {
        let na = l.arrays.len();
        let mut depth = vec![1u64; na];
        let mut latest = vec![i64::MIN; na];
        for (j, a, is_store) in accesses {
            let a = a as usize;
            if !l.arrays[a].iteration_private {
                continue;
            }
            if latest[a] > j as i64 {
                depth[a] = depth[a].max((latest[a] - j as i64 + 1) as u64);
            }
            if is_store {
                latest[a] = latest[a].max(j as i64);
            }
        }
        let size = l.arrays.iter().map(|d| d.len as i64).collect();
        let active = depth.iter().any(|&d| d > 1);
        PrivRot { depth, size, active }
    }

    /// Measure from an `(iteration, op)` launch sequence (the flat and
    /// pipelined executors' representation, where sequence order *is*
    /// memory-access order).
    pub(crate) fn for_sequence(l: &Loop, seq: &[(u64, usize)]) -> PrivRot {
        Self::for_accesses(
            l,
            seq.iter().filter_map(|&(j, oi)| {
                let op = &l.ops[oi];
                op.mem.as_ref().map(|r| (j, r.array.0, op.opcode.kind == OpKind::Store))
            }),
        )
    }

    /// Extra element offset renaming an access to `array` at iteration
    /// `j` into its copy. Zero for depth-1 arrays.
    #[inline]
    pub(crate) fn offset(&self, array: u32, j: u64) -> i64 {
        let d = self.depth[array as usize];
        if d <= 1 {
            0
        } else {
            (j % d) as i64 * self.size[array as usize]
        }
    }

    /// Widen every renamed array to its copy count, each copy starting
    /// from the array's pre-run contents (an iteration that reads a cell
    /// it never wrote observes the fill value, as in-order would).
    pub(crate) fn widen(&self, mem: &mut Memory) {
        if !self.active {
            return;
        }
        for (a, &d) in self.depth.iter().enumerate() {
            if d > 1 {
                mem.widen_array(a as u32, d);
            }
        }
    }

    /// Undo [`PrivRot::widen`]: keep the copy the final iteration wrote,
    /// restoring the in-order final memory image.
    pub(crate) fn restore(&self, mem: &mut Memory, iterations: u64) {
        if !self.active {
            return;
        }
        for (a, &d) in self.depth.iter().enumerate() {
            if d > 1 {
                let keep = if iterations == 0 { 0 } else { (iterations - 1) % d };
                mem.collapse_array(a as u32, self.size[a] as usize, keep);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;
    use sv_ir::{LoopBuilder, ScalarType};

    /// data[i] → comm[0] → data[i+8], with `comm` iteration-private: the
    /// canonical scalar↔vector communication shape.
    fn comm_loop() -> Loop {
        let mut b = LoopBuilder::new("comm");
        b.trip(16);
        let data = b.array("data", ScalarType::F64, 32);
        let comm = b.array("comm", ScalarType::F64, 4);
        let ld = b.load(data, 1, 0);
        b.store(comm, 0, 0, ld);
        let lc = b.load(comm, 0, 0);
        b.store(data, 1, 8, lc);
        let mut l = b.finish();
        l.arrays[comm.0 as usize].iteration_private = true;
        l
    }

    #[test]
    fn overlapped_sequence_measures_a_window() {
        let l = comm_loop();
        // Iteration 1's comm store fires before iteration 0's comm load:
        // the overlap the scheduler is allowed to create.
        let seq: Vec<(u64, usize)> =
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (0, 2), (0, 3), (1, 2), (1, 3)];
        let pr = PrivRot::for_sequence(&l, &seq);
        assert_eq!(pr.offset(0, 5), 0, "non-private array never renames");
        assert_eq!(pr.offset(1, 0), 0);
        assert_eq!(pr.offset(1, 1), 4, "iteration 1 gets its own copy");
        assert_eq!(pr.offset(1, 2), 0, "window wraps");
    }

    #[test]
    fn in_order_sequence_is_identity() {
        let l = comm_loop();
        let seq: Vec<(u64, usize)> =
            (0..4).flat_map(|j| (0..4).map(move |o| (j, o))).collect();
        let pr = PrivRot::for_sequence(&l, &seq);
        assert!(!pr.active);
        assert_eq!(pr.offset(1, 3), 0);
    }

    #[test]
    fn widen_restore_roundtrip_keeps_final_copy() {
        let l = comm_loop();
        let seq: Vec<(u64, usize)> =
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (0, 2), (0, 3), (1, 2), (1, 3)];
        let pr = PrivRot::for_sequence(&l, &seq);
        let mut mem = Memory::for_arrays(&l.arrays);
        pr.widen(&mut mem);
        assert_eq!(mem.array(1).len(), 8);
        // Iteration 0 writes its copy, iteration 1 writes its copy.
        mem.write(1, 0, crate::memory::Scalar::F(10.0));
        mem.write(1, 4, crate::memory::Scalar::F(11.0));
        pr.restore(&mut mem, 2);
        assert_eq!(mem.array(1).len(), 4);
        assert_eq!(mem.read(1, 0).as_f64(), 11.0, "final iteration's copy survives");
    }

    /// The end-to-end regression: an overlapped launch order that reuses
    /// a private comm slot across in-flight iterations must compute
    /// exactly what in-order execution computes.
    #[test]
    fn overlapped_private_slots_match_in_order() {
        let l = comm_loop();
        let n = 16u64;
        // Software-pipelined order, depth-2 overlap: iteration j+1's comm
        // store fires before iteration j's comm load.
        let mut seq: Vec<(u64, usize)> = vec![(0, 0), (0, 1)];
        for j in 0..n - 1 {
            seq.extend_from_slice(&[(j + 1, 0), (j + 1, 1), (j, 2), (j, 3)]);
        }
        seq.extend_from_slice(&[(n - 1, 2), (n - 1, 3)]);
        let mut mem_seq = Memory::for_arrays(&l.arrays);
        let mut mem_ord = mem_seq.clone();
        let mut mem_ref = mem_seq.clone();
        crate::decoded::run_sequence(&l, &mut mem_seq, &seq, n);
        crate::decoded::run_inorder(&l, &mut mem_ord, 0..n);
        crate::reference::execute_instances(&l, &mut mem_ref, &seq, n);
        for a in 0..2u32 {
            for (i, (x, y)) in mem_seq.array(a).iter().zip(mem_ord.array(a)).enumerate() {
                assert!(x.identical(*y), "array {a}[{i}]: pipelined {x:?} vs in-order {y:?}");
            }
            for (i, (x, y)) in mem_ref.array(a).iter().zip(mem_ord.array(a)).enumerate() {
                assert!(x.identical(*y), "array {a}[{i}]: reference {x:?} vs in-order {y:?}");
            }
        }
    }
}
