//! # sv-sim — functional and cycle-level simulation
//!
//! The execution substrate standing in for Trimaran's cycle-accurate
//! simulator:
//!
//! * [`execute_loop`] — a functional interpreter for loops in any form
//!   (source, unrolled, vectorized, distributed) over a shared [`Memory`]
//!   of named arrays, used to prove that every transformation preserves
//!   semantics;
//! * [`run_source`] / [`run_compiled`] — whole-plan execution producing
//!   final memory and live-out values, plus [`assert_equivalent`] which
//!   compares a compiled plan against its source loop;
//! * [`play_schedule`] / [`validate_schedule`] — a cycle-level
//!   software-pipeline player that walks a modulo schedule with all
//!   in-flight iterations, validating both dependence latencies and
//!   per-cycle resource capacities, and producing the exact cycle count
//!   the analytic timing model is cross-checked against;
//! * [`execute_pipelined`] — functional execution of the schedule itself,
//!   every operation instance at its issue cycle with registers renamed
//!   per iteration;
//! * [`execute_schedule`] — the cycle-accurate VLIW executor: runs the
//!   emitted prologue/kernel/epilogue layout with interlock stalls,
//!   per-class unit reservations and latency-tracked delivery, measuring
//!   the real steady-state cycles per iteration
//!   ([`run_compiled_executed`] / [`executed_selfcheck`] /
//!   [`compile_executed`] run whole compiled plans through it and prove
//!   measured II == scheduled II against the reference engine).
//!
//! ```
//! use sv_sim::{assert_equivalent, run_source};
//! use sv_core::{compile, Strategy};
//! use sv_machine::MachineConfig;
//! use sv_ir::{LoopBuilder, ScalarType};
//!
//! let mut b = LoopBuilder::new("dot");
//! b.trip(100);
//! let x = b.array("x", ScalarType::F64, 128);
//! let y = b.array("y", ScalarType::F64, 128);
//! let lx = b.load(x, 1, 0);
//! let ly = b.load(y, 1, 0);
//! let m = b.fmul(lx, ly);
//! b.reduce_add(m);
//! let l = b.finish();
//!
//! let machine = MachineConfig::figure1();
//! let compiled = compile(&l, &machine, Strategy::Selective).unwrap();
//! assert_equivalent(&l, &compiled); // same memory and live-outs
//! let _ = run_source(&l);
//! ```

mod decoded;
mod flat_exec;
mod interp;
mod memory;
mod pipeline_exec;
mod player;
mod privrot;
pub mod reference;
mod run;
mod sched_exec;

pub use interp::{execute_loop, LiveOutValue};
pub use flat_exec::execute_flat;
pub use pipeline_exec::execute_pipelined;
pub use memory::{Memory, Scalar};
pub use player::{play_schedule, PlaybackError, PlaybackReport};
pub use sched_exec::{execute_schedule, ExecError, ExecReport};
// Structural schedule validation moved down into `sv-modsched` so the
// `sv-core` driver can run it at pass boundaries; re-exported here for
// back-compatibility.
pub use sv_modsched::{validate_schedule, ValidationError};
pub use run::{
    assert_equivalent, check_equivalent, compile_executed, executed_selfcheck,
    has_register_state_across_cleanup, oracle_selfcheck, run_compiled,
    run_compiled_executed, run_source, EquivalenceError, ExecutedPiece, RunResult,
};
