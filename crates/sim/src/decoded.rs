//! The pre-decoded fast execution engine.
//!
//! Every public executor of this crate used to interpret [`Loop`]s
//! directly: operands were re-resolved on every read, loop-carried values
//! lived in unbounded per-op history vectors (in-order) or a
//! `HashMap<(op, iteration), Value)>` (pipelined), and each lane read
//! cloned a fresh `Vec<Scalar>`. That made the oracle — which the
//! differential fuzzer runs tens of thousands of times per CI pass — the
//! dominant cost of verification.
//!
//! [`DecodedLoop`] lowers a loop **once**:
//!
//! * every operand becomes a dense [`DOperand`] — def uses carry the
//!   producer's index, live-ins (pure functions of their name) and
//!   constants fold to immediate [`Scalar`]s, induction-variable operands
//!   precompute their per-lane step;
//! * every op precomputes its produced lane count, its carried-init
//!   scalar, and its ring-buffer *depth* — `1 + max loop-carried
//!   distance` over all uses of its value (in-order execution), or the
//!   exact overlap window measured from the launch sequence (pipelined
//!   execution);
//! * run-time state is one flat `Vec<Scalar>` ring arena (op `p`'s value
//!   for iteration `t` lives at `base[p] + (t mod depth[p])·lanes[p]`)
//!   plus a single reusable lane scratch buffer — the hot loop performs
//!   no allocation and no hashing.
//!
//! The **ring invariant**: a slot is only ever read at iteration
//! distances `d < depth`, so the producer's iteration `t` value is intact
//! until iteration `t + depth` overwrites it — by construction of the
//! depths above. The original interpreters survive verbatim in
//! [`crate::reference`]; `crates/sim/tests/engine_equiv.rs` and the
//! fuzzer's `--oracle-selfcheck` mode prove both engines byte-identical.

use crate::interp::{apply_binary, apply_select, apply_unary, init_scalar, LiveOutValue};
use crate::memory::{Memory, Scalar};
use sv_ir::{Loop, OpKind, Operand, ScalarType, VectorForm};

/// A fully resolved operand: no name, live-in or def lookups remain.
pub(crate) enum DOperand {
    /// Value of op `op` (dense index), `distance` iterations ago.
    Def { op: u32, distance: u32 },
    /// Immediate (constants and live-ins fold here at decode time).
    Const(Scalar),
    /// Affine induction-variable function; `step` is the per-lane
    /// increment `scale / iter_scale`, precomputed.
    Iv { scale: i64, offset: i64, step: i64 },
}

/// Decoded memory reference.
pub(crate) struct DMem {
    array: u32,
    stride: i64,
    offset: i64,
    width: u32,
}

/// Fused execution class: the single hot-loop dispatch discriminant
/// (replaces re-deriving `OpKind::arity()` per op instance).
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum DClass {
    Load,
    Store,
    Pack,
    Extract,
    Binary,
    Unary,
    Select,
}

/// One decoded operation.
pub(crate) struct DOp {
    pub(crate) kind: OpKind,
    pub(crate) class: DClass,
    pub(crate) ty: ScalarType,
    /// Whether the op *executes* in vector form (drives lane iteration).
    pub(crate) vector: bool,
    /// Whether the produced value is a vector (`Pack` always is, `Extract`
    /// never is, everything else follows its form).
    pub(crate) vec_value: bool,
    /// Produced lane count: 1 for scalar values, the memory width for
    /// vector loads, the operand count for `Pack`, `k` otherwise.
    pub(crate) lanes: u32,
    /// Operand range in the [`DecodedLoop::operands`] arena.
    pub(crate) o_start: u32,
    pub(crate) o_end: u32,
    pub(crate) mem: Option<DMem>,
    /// Pre-resolved carried-init scalar.
    pub(crate) init: Scalar,
    /// True when the op defines a value (everything but stores).
    pub(crate) defines: bool,
    /// In-order ring depth: `1 + max carried distance` over uses.
    pub(crate) depth: u32,
    /// In-order ring base offset into the flat arena.
    pub(crate) base: u32,
}

/// A loop lowered for fast execution. Construction is `O(ops + operands)`
/// and performed once per execution call; everything at run time is dense
/// indexing.
pub(crate) struct DecodedLoop {
    pub(crate) ops: Vec<DOp>,
    pub(crate) operands: Vec<DOperand>,
    /// The loop's vector width (`max(1)`); IV lane evaluation needs it.
    k: u32,
    /// Largest produced lane count (scratch buffer size).
    pub(crate) max_lanes: usize,
    /// Flat ring arena length for in-order execution.
    ring_len: usize,
}

impl DecodedLoop {
    pub(crate) fn new(l: &Loop) -> DecodedLoop {
        let k = l.vector_width.max(1);
        let n = l.ops.len();
        let mut depth = vec![1u32; n];
        for op in &l.ops {
            for (p, d) in op.def_uses() {
                depth[p.index()] = depth[p.index()].max(d + 1);
            }
        }
        let mut operands = Vec::new();
        let mut ops = Vec::with_capacity(n);
        let mut base = 0u32;
        let mut max_lanes = 1usize;
        for op in &l.ops {
            let vector = op.opcode.form == VectorForm::Vector;
            let o_start = operands.len() as u32;
            for o in &op.operands {
                operands.push(match *o {
                    Operand::Def { op, distance } => DOperand::Def { op: op.0, distance },
                    Operand::LiveIn(id) => {
                        let li = &l.live_ins[id.0 as usize];
                        DOperand::Const(Memory::live_in_value(&li.name, li.ty))
                    }
                    Operand::ConstI(v) => DOperand::Const(Scalar::I(v)),
                    Operand::ConstF(v) => DOperand::Const(Scalar::F(v)),
                    Operand::Iv { scale, offset } => DOperand::Iv {
                        scale,
                        offset,
                        step: scale / i64::from(l.iter_scale),
                    },
                });
            }
            let mem = op.mem.as_ref().map(|r| DMem {
                array: r.array.0,
                stride: r.stride,
                offset: r.offset,
                width: r.width,
            });
            let kind = op.opcode.kind;
            let class = match kind {
                OpKind::Load => DClass::Load,
                OpKind::Store => DClass::Store,
                OpKind::Pack => DClass::Pack,
                OpKind::Extract => DClass::Extract,
                OpKind::Select => DClass::Select,
                k if k.arity() == 2 => DClass::Binary,
                _ => DClass::Unary,
            };
            let vec_value = match kind {
                OpKind::Pack => true,
                OpKind::Extract => false,
                _ => vector,
            };
            let lanes = if !vec_value {
                1
            } else {
                match kind {
                    OpKind::Load => mem.as_ref().map_or(k, |m| m.width),
                    OpKind::Pack => op.operands.len() as u32,
                    _ => k,
                }
            };
            max_lanes = max_lanes.max(lanes as usize);
            let defines = kind.defines_value();
            let d = depth[op.id.index()];
            ops.push(DOp {
                kind,
                class,
                ty: op.opcode.ty,
                vector,
                vec_value,
                lanes,
                o_start,
                o_end: operands.len() as u32,
                mem,
                init: init_scalar(op.carried_init, op.opcode.ty),
                defines,
                depth: d,
                base,
            });
            if defines {
                base += d * lanes;
            }
        }
        DecodedLoop { ops, operands, k, max_lanes, ring_len: base as usize }
    }
}

/// An operand resolved *once per op instance* — ring slots, guard checks
/// and init fallbacks are all decided here, so per-lane reads inside the
/// op body are plain indexed loads.
#[derive(Clone, Copy)]
enum Src {
    /// Immediate: constants, live-ins and carried-init fallbacks.
    Imm(Scalar),
    /// Live ring value. `at` is lane 0's slot, `last` the final lane's
    /// (`at == last` ⟺ scalar value ⟹ lane reads broadcast).
    Slot { at: usize, last: usize },
    /// Induction variable: lane `j` is `base + min(j, last)·step`;
    /// `last` is 0 for scalar consumers (the broadcast rule) and
    /// `k − 1` for vector consumers (`.scalar()` reads the last lane).
    Iv { base: i64, step: i64, last: i64 },
}

/// Execute one decoded op instance. `resolve(p, dist)` maps a def read to
/// its producer's lane-0 ring slot (or `None` when the read predates the
/// run and observes the carried init); `abs` is the absolute iteration
/// for memory addressing and IV values; `rot(array)` is the extra
/// element offset renaming this instance's `iteration_private` accesses
/// into their per-iteration copy ([`crate::privrot::PrivRot::offset`] —
/// identically zero for in-order execution). The result is left in
/// `scratch[..lanes]`. Returns whether a result was produced (everything
/// but stores).
#[inline]
#[allow(clippy::too_many_arguments)] // internal hot-path dispatch: every arg is a distinct execution context piece
pub(crate) fn exec_op(
    d: &DecodedLoop,
    op: &DOp,
    abs: i64,
    mem: &mut Memory,
    ring: &[Scalar],
    scratch: &mut [Scalar],
    resolve: impl Fn(usize, u32) -> Option<usize>,
    rot: impl Fn(u32) -> i64,
) -> bool {
    let os = &d.operands[op.o_start as usize..op.o_end as usize];
    // IV operands evaluate per-lane only when the *consumer* is a vector
    // op (the reference interpreter's broadcast rule).
    let iv_last = if op.vector { i64::from(d.k) - 1 } else { 0 };
    let src_of = |o: &DOperand| -> Src {
        match *o {
            DOperand::Def { op: p, distance } => {
                let p = p as usize;
                match resolve(p, distance) {
                    Some(at) => Src::Slot { at, last: at + d.ops[p].lanes as usize - 1 },
                    None => Src::Imm(d.ops[p].init),
                }
            }
            DOperand::Const(s) => Src::Imm(s),
            DOperand::Iv { scale, offset, step } => {
                Src::Iv { base: scale * abs + offset, step, last: iv_last }
            }
        }
    };
    let lane_of = |s: Src, lane: usize| -> Scalar {
        match s {
            Src::Imm(v) => v,
            Src::Slot { at, last } => ring[if at == last { at } else { at + lane }],
            Src::Iv { base, step, last } => Scalar::I(base + (lane as i64).min(last) * step),
        }
    };
    let scalar_of = |s: Src| -> Scalar {
        match s {
            Src::Imm(v) => v,
            Src::Slot { last, .. } => ring[last],
            Src::Iv { base, step, last } => Scalar::I(base + last * step),
        }
    };
    match op.class {
        DClass::Load => {
            let m = op.mem.as_ref().expect("load has a memory ref");
            let b = m.stride * abs + m.offset + rot(m.array);
            if op.vec_value {
                for (j, s) in scratch.iter_mut().enumerate().take(m.width as usize) {
                    *s = mem.read(m.array, b + j as i64).coerce(op.ty);
                }
            } else {
                scratch[0] = mem.read(m.array, b).coerce(op.ty);
            }
            true
        }
        DClass::Store => {
            let m = op.mem.as_ref().expect("store has a memory ref");
            let b = m.stride * abs + m.offset + rot(m.array);
            let s0 = src_of(&os[0]);
            if op.vector {
                for j in 0..m.width as usize {
                    mem.write(m.array, b + j as i64, lane_of(s0, j));
                }
            } else {
                mem.write(m.array, b, scalar_of(s0));
            }
            false
        }
        DClass::Pack => {
            for (j, o) in os.iter().enumerate() {
                scratch[j] = scalar_of(src_of(o)).coerce(op.ty);
            }
            true
        }
        DClass::Extract => {
            let lane = scalar_of(src_of(&os[1])).as_i64() as usize;
            scratch[0] = lane_of(src_of(&os[0]), lane);
            true
        }
        DClass::Binary => {
            let s0 = src_of(&os[0]);
            let s1 = src_of(&os[1]);
            if op.vector {
                for (j, s) in scratch.iter_mut().enumerate().take(op.lanes as usize) {
                    *s = apply_binary(op.kind, op.ty, lane_of(s0, j), lane_of(s1, j));
                }
            } else {
                scratch[0] = apply_binary(op.kind, op.ty, scalar_of(s0), scalar_of(s1));
            }
            true
        }
        DClass::Unary => {
            let s0 = src_of(&os[0]);
            if op.vector {
                for (j, s) in scratch.iter_mut().enumerate().take(op.lanes as usize) {
                    *s = apply_unary(op.kind, op.ty, lane_of(s0, j));
                }
            } else {
                scratch[0] = apply_unary(op.kind, op.ty, scalar_of(s0));
            }
            true
        }
        DClass::Select => {
            let s0 = src_of(&os[0]);
            let s1 = src_of(&os[1]);
            let s2 = src_of(&os[2]);
            if op.vector {
                for (j, s) in scratch.iter_mut().enumerate().take(op.lanes as usize) {
                    *s = apply_select(op.ty, lane_of(s0, j), lane_of(s1, j), lane_of(s2, j));
                }
            } else {
                scratch[0] = apply_select(op.ty, scalar_of(s0), scalar_of(s1), scalar_of(s2));
            }
            true
        }
    }
}

/// Build the final [`LiveOutValue`]s from per-lane reads of each
/// live-out op's last value (`get_lane(op, lane)`).
pub(crate) fn collect_liveouts(
    l: &Loop,
    d: &DecodedLoop,
    get_lane: impl Fn(usize, usize) -> Scalar,
) -> Vec<LiveOutValue> {
    l.live_outs
        .iter()
        .map(|lo| {
            let p = lo.op.index();
            let pop = &d.ops[p];
            let value = if pop.vec_value {
                if let Some(kind) = lo.horizontal {
                    (1..pop.lanes as usize)
                        .fold(get_lane(p, 0), |a, j| apply_binary(kind, pop.ty, a, get_lane(p, j)))
                } else {
                    get_lane(p, pop.lanes as usize - 1)
                }
            } else {
                get_lane(p, 0)
            };
            LiveOutValue { name: lo.name.clone(), value, combine: lo.combine }
        })
        .collect()
}

/// Fast in-order execution: iterations `iters` of `l` against `mem`,
/// program order within each iteration. Semantically identical to
/// [`crate::reference::execute_loop`].
pub(crate) fn run_inorder(
    l: &Loop,
    mem: &mut Memory,
    iters: std::ops::Range<u64>,
) -> Vec<LiveOutValue> {
    let d = DecodedLoop::new(l);
    let mut ring = vec![Scalar::I(0); d.ring_len];
    let mut scratch = vec![Scalar::I(0); d.max_lanes];
    let count = iters.end.saturating_sub(iters.start);
    // Slot arithmetic: depth 1 (the overwhelmingly common case — no
    // carried use beyond the current iteration) skips the modulo.
    let slot_at = |pop: &DOp, t: u64| -> usize {
        let rot = if pop.depth == 1 { 0 } else { (t % u64::from(pop.depth)) as usize };
        pop.base as usize + rot * pop.lanes as usize
    };
    for local in 0..count {
        let abs = (iters.start + local) as i64;
        for op in &d.ops {
            let resolve = |p: usize, dist: u32| -> Option<usize> {
                if u64::from(dist) > local {
                    return None;
                }
                Some(slot_at(&d.ops[p], local - u64::from(dist)))
            };
            if exec_op(&d, op, abs, mem, &ring, &mut scratch, resolve, |_| 0) {
                let slot = slot_at(op, local);
                if op.lanes == 1 {
                    ring[slot] = scratch[0];
                } else {
                    let ln = op.lanes as usize;
                    ring[slot..slot + ln].copy_from_slice(&scratch[..ln]);
                }
            }
        }
    }
    collect_liveouts(l, &d, |p, lane| {
        let pop = &d.ops[p];
        if count == 0 {
            return pop.init; // carried read past the start observes init
        }
        let slot = pop.base as usize
            + ((count - 1) % u64::from(pop.depth)) as usize * pop.lanes as usize;
        ring[slot + if pop.lanes == 1 { 0 } else { lane }]
    })
}

/// Fast execution of an explicit `(iteration, op)` launch sequence with
/// per-iteration value renaming — the decoded replacement for the
/// `HashMap`-backed [`crate::reference::execute_instances`].
///
/// Ring depths are measured exactly from `seq` in one linear prescan: for
/// every read of `(p, j − dist)`, the producer's depth must cover the
/// newest `p`-iteration already launched, so the slot still holds the
/// value the read names. Sequences produced by modulo schedules and flat
/// layouts fire each op's iterations in increasing order; the prescan
/// additionally guards out-of-order producer firings.
///
/// `iteration_private` arrays are renamed per in-flight iteration by the
/// same construction applied to memory ([`crate::privrot::PrivRot`]):
/// the dependence graph carries no cross-iteration edges on them, so an
/// overlapped sequence may fire iteration `j+1`'s store into a comm slot
/// before iteration `j`'s load — each iteration must observe its own
/// copy.
///
/// # Panics
///
/// Panics when an instance reads a value that has not been produced — the
/// sequence violates a dependence (same contract as the reference
/// executor).
pub(crate) fn run_sequence(
    l: &Loop,
    mem: &mut Memory,
    seq: &[(u64, usize)],
    iterations: u64,
) -> Vec<LiveOutValue> {
    let d = DecodedLoop::new(l);
    let n = d.ops.len();

    // Prescan: exact per-op ring depth for this launch order.
    let mut depth = vec![1u64; n];
    let mut latest = vec![i64::MIN; n];
    for &(j, oi) in seq {
        let op = &d.ops[oi];
        for o in &d.operands[op.o_start as usize..op.o_end as usize] {
            if let DOperand::Def { op: p, distance } = *o {
                let p = p as usize;
                let need = j as i64 - i64::from(distance);
                if need >= 0 && latest[p] > need {
                    depth[p] = depth[p].max((latest[p] - need + 1) as u64);
                }
            }
        }
        if op.defines {
            if latest[oi] != i64::MIN && (j as i64) <= latest[oi] {
                // Out-of-order (or duplicate) firing of the same op: keep
                // every slot in the overlap window distinct.
                depth[oi] = depth[oi].max((latest[oi] - j as i64 + 2) as u64);
            }
            latest[oi] = latest[oi].max(j as i64);
        }
    }
    let mut bases = vec![0usize; n];
    let mut ring_len = 0usize;
    for (i, op) in d.ops.iter().enumerate() {
        bases[i] = ring_len;
        if op.defines {
            ring_len += depth[i] as usize * op.lanes as usize;
        }
    }

    let pr = crate::privrot::PrivRot::for_sequence(l, seq);
    pr.widen(mem);

    let mut ring = vec![Scalar::I(0); ring_len];
    let mut scratch = vec![Scalar::I(0); d.max_lanes];
    let mut produced_up_to = vec![i64::MIN; n];
    for &(j, oi) in seq {
        let op = &d.ops[oi];
        let resolve = |p: usize, dist: u32| -> Option<usize> {
            if u64::from(dist) > j {
                return None;
            }
            let need = j - u64::from(dist);
            assert!(
                produced_up_to[p] >= need as i64,
                "pipeline read before write: scheduler bug"
            );
            let rot = if depth[p] == 1 { 0 } else { (need % depth[p]) as usize };
            Some(bases[p] + rot * d.ops[p].lanes as usize)
        };
        if exec_op(&d, op, j as i64, mem, &ring, &mut scratch, resolve, |a| pr.offset(a, j)) {
            let ln = op.lanes as usize;
            let slot = bases[oi] + (j % depth[oi]) as usize * ln;
            if ln == 1 {
                ring[slot] = scratch[0];
            } else {
                ring[slot..slot + ln].copy_from_slice(&scratch[..ln]);
            }
            produced_up_to[oi] = produced_up_to[oi].max(j as i64);
        }
    }
    pr.restore(mem, iterations);
    collect_liveouts(l, &d, |p, lane| {
        let pop = &d.ops[p];
        if iterations == 0 {
            return pop.init;
        }
        let need = iterations - 1;
        assert!(
            produced_up_to[p] >= need as i64,
            "pipeline read before write: scheduler bug"
        );
        let slot = bases[p] + (need % depth[p]) as usize * pop.lanes as usize;
        ring[slot + if pop.lanes == 1 { 0 } else { lane }]
    })
}
