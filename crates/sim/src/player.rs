//! Cycle-level playback of modulo schedules. (Structural schedule
//! validation lives in `sv_modsched::validate_schedule`, re-exported from
//! this crate's root.)

use std::collections::HashMap;
use sv_ir::Loop;
use sv_machine::MachineConfig;
use sv_modsched::Schedule;

/// The outcome of playing a software pipeline cycle by cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaybackReport {
    /// Exact cycles to run `iterations` iterations:
    /// `(iterations − 1)·II + schedule length` (0 for zero iterations).
    pub total_cycles: u64,
    /// Maximum simultaneously in-flight iterations observed.
    pub peak_inflight: u32,
    /// Cycles the analytic `(n + SC − 1)·II` model predicts; always within
    /// one II of the exact count.
    pub analytic_cycles: u64,
}

/// A defect the playback found in a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaybackError {
    /// Two in-flight operation instances occupy the same resource
    /// instance in the same cycle — a scheduler bug
    /// (`sv_modsched::validate_schedule` would also have caught it).
    CapacityViolation {
        /// Loop name.
        looop: String,
        /// The oversubscribed resource instance, `Display`-rendered.
        instance: String,
        /// The cycle (from the first iteration's issue) it happens in.
        cycle: u64,
    },
}

impl std::fmt::Display for PlaybackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaybackError::CapacityViolation { looop, instance, cycle } => write!(
                f,
                "playback capacity violation on {instance} at cycle {cycle} of {looop}"
            ),
        }
    }
}

impl std::error::Error for PlaybackError {}

/// Walk the pipeline with all iterations in flight, verifying per-cycle
/// resource capacities over a representative window, and report exact and
/// analytic cycle counts.
///
/// # Errors
///
/// Returns [`PlaybackError::CapacityViolation`] when two in-flight
/// instances claim the same resource instance in the same cycle — a
/// scheduler bug, reported as a typed error like every other pass
/// failure so callers can surface it through `CompileError`.
pub fn play_schedule(
    l: &Loop,
    m: &MachineConfig,
    s: &Schedule,
    iterations: u64,
) -> Result<PlaybackReport, PlaybackError> {
    if iterations == 0 {
        return Ok(PlaybackReport { total_cycles: 0, peak_inflight: 0, analytic_cycles: 0 });
    }
    let pool = m.resource_pool();
    // Simulate an explicit window of iterations (enough to reach steady
    // state twice over); beyond it the modulo structure repeats exactly.
    let window = iterations.min(u64::from(s.stage_count) * 4 + 4);
    let horizon = ((window - 1) * u64::from(s.ii) + u64::from(s.length)) as usize;
    let mut usage: Vec<HashMap<usize, u32>> = vec![HashMap::new(); horizon];
    let mut inflight_start = vec![0u32; horizon + 1];
    for it in 0..window {
        let base = it * u64::from(s.ii);
        inflight_start[base as usize] += 1;
        for (i, placement) in s.assignments.iter().enumerate() {
            for (inst, cycles) in placement {
                for j in 0..*cycles {
                    let cycle = (base + u64::from(s.times[i]) + u64::from(j)) as usize;
                    let e = usage[cycle].entry(pool.dense_id(*inst)).or_insert(0);
                    *e += 1;
                    if *e > 1 {
                        return Err(PlaybackError::CapacityViolation {
                            looop: l.name.clone(),
                            instance: inst.to_string(),
                            cycle: cycle as u64,
                        });
                    }
                }
            }
        }
    }
    // Peak in-flight iterations: stage count once the pipeline fills.
    let mut peak = 0u32;
    let mut current = 0i64;
    for (c, &starts) in inflight_start.iter().enumerate() {
        current += i64::from(starts);
        let cu = c as u64;
        if cu >= u64::from(s.length) && cu.is_multiple_of(u64::from(s.ii)) {
            // An iteration started `length` cycles ago has fully drained.
            current -= 1;
        }
        peak = peak.max(u32::try_from(current.max(0)).expect("non-negative"));
    }

    let total_cycles = (iterations - 1) * u64::from(s.ii) + u64::from(s.length);
    let analytic_cycles = (iterations + u64::from(s.stage_count) - 1) * u64::from(s.ii);
    debug_assert!(analytic_cycles >= total_cycles);
    debug_assert!(analytic_cycles - total_cycles < u64::from(s.ii));
    Ok(PlaybackReport { total_cycles, peak_inflight: peak, analytic_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_analysis::DepGraph;
    use sv_ir::{LoopBuilder, ScalarType};
    use sv_modsched::{modulo_schedule, validate_schedule, ValidationError};

    fn compile_one(l: &Loop, m: &MachineConfig) -> (DepGraph, Schedule) {
        let g = DepGraph::build(l);
        let s = modulo_schedule(l, &g, m).unwrap();
        (g, s)
    }

    fn sample_loop() -> Loop {
        let mut b = LoopBuilder::new("sample");
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        let s = b.fadd(mu, lx);
        b.store(y, 1, 0, s);
        b.finish()
    }

    #[test]
    fn valid_schedules_validate() {
        let l = sample_loop();
        let m = MachineConfig::paper_default();
        let (g, s) = compile_one(&l, &m);
        validate_schedule(&l, &g, &m, &s).unwrap();
    }

    #[test]
    fn corrupted_time_is_caught() {
        let l = sample_loop();
        let m = MachineConfig::paper_default();
        let (g, mut s) = compile_one(&l, &m);
        // Put the store before its producer.
        s.times[4] = 0;
        let r = validate_schedule(&l, &g, &m, &s);
        assert!(matches!(r, Err(ValidationError::DependenceViolated { .. })), "{r:?}");
    }

    #[test]
    fn corrupted_assignment_is_caught() {
        let l = sample_loop();
        let m = MachineConfig::paper_default();
        let (g, mut s) = compile_one(&l, &m);
        s.assignments[0].clear();
        let r = validate_schedule(&l, &g, &m, &s);
        assert!(matches!(r, Err(ValidationError::AssignmentMismatch { .. })));
    }

    #[test]
    fn playback_matches_analytic_model() {
        let l = sample_loop();
        let m = MachineConfig::paper_default();
        let (_, s) = compile_one(&l, &m);
        let r = play_schedule(&l, &m, &s, 1000).unwrap();
        assert_eq!(r.total_cycles, 999 * u64::from(s.ii) + u64::from(s.length));
        assert!(r.analytic_cycles >= r.total_cycles);
        assert!(r.analytic_cycles - r.total_cycles < u64::from(s.ii));
        assert!(r.peak_inflight >= s.stage_count - 1);
    }

    #[test]
    fn playback_zero_iterations() {
        let l = sample_loop();
        let m = MachineConfig::paper_default();
        let (_, s) = compile_one(&l, &m);
        let r = play_schedule(&l, &m, &s, 0).unwrap();
        assert_eq!(r.total_cycles, 0);
    }

    #[test]
    fn capacity_violation_is_a_typed_error_not_a_panic() {
        let l = sample_loop();
        let m = MachineConfig::paper_default();
        let (_, mut s) = compile_one(&l, &m);
        // Double-book an op's first reservation: the same resource
        // instance now claimed twice in the same cycle.
        let dup = s.assignments[0][0];
        s.assignments[0].push(dup);
        let r = play_schedule(&l, &m, &s, 8);
        match r {
            Err(PlaybackError::CapacityViolation { looop, .. }) => {
                assert_eq!(looop, l.name);
            }
            other => panic!("expected a capacity violation, got {other:?}"),
        }
    }
}
