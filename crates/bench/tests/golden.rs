//! Golden snapshot tests.
//!
//! Two byte-for-byte snapshots pin the harness's user-visible output:
//! the full Table 2 text (`table2` binary / `table2_text`) and one
//! `--stats`-shaped compilation JSON line with its volatile wall-time
//! fields masked. Any drift — a formatting tweak, a numeric change from a
//! pass reorder, a counter rename — fails loudly with a diff, and
//! intentional changes are re-blessed with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sv-bench --test golden
//! ```

use sv_bench::{table2_text, table_arch_text, table_executed_text, table_optimality_text};
use sv_core::{compile_checked, DriverConfig};
use sv_machine::{MachineConfig, MachineRegistry};
use sv_workloads::figure1_dot_product;

/// Replace every `"…_ns":<digits>` value with `0`: wall times are the
/// only non-deterministic fields in a stats line.
fn mask_ns(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(i) = rest.find("_ns\":") {
        let at = i + "_ns\":".len();
        out.push_str(&rest[..at]);
        out.push('0');
        rest = rest[at..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn check_golden(name: &str, fresh: &str, committed: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, fresh).expect("write golden");
        return;
    }
    assert_eq!(
        fresh, committed,
        "golden snapshot `{name}` drifted; if intentional, re-bless with \
         UPDATE_GOLDEN=1 cargo test -p sv-bench --test golden"
    );
}

#[test]
fn table2_matches_golden() {
    check_golden("table2.txt", &table2_text(1), include_str!("golden/table2.txt"));
}

#[test]
fn table_arch_matches_golden() {
    // The sweep set is the registry: builtins plus the committed
    // examples/machines/ specs, so this snapshot also pins that a spec
    // file edit is a visible, reviewed change. The bytes are
    // jobs-invariant (the harness determinism contract), so the test may
    // use every core.
    let mut registry = MachineRegistry::builtin();
    let dir = format!("{}/../../examples/machines", env!("CARGO_MANIFEST_DIR"));
    registry.load_dir(std::path::Path::new(&dir)).expect("sweep specs load");
    let fresh = table_arch_text(&registry, sv_core::parallel::default_jobs());
    check_golden("table_arch.txt", &fresh, include_str!("golden/table_arch.txt"));
}

#[test]
fn table_executed_matches_golden() {
    // The executed-schedule gate as a pinned artifact: every registry
    // machine × suite slice × strategy replayed on the cycle-accurate
    // executor. The snapshot must never contain a `VIOLATION:` line —
    // that is the ci.sh acceptance gate — and pinning the bytes makes
    // any drift in measured IIs or short-pipeline counts a reviewed
    // change.
    let mut registry = MachineRegistry::builtin();
    let dir = format!("{}/../../examples/machines", env!("CARGO_MANIFEST_DIR"));
    registry.load_dir(std::path::Path::new(&dir)).expect("sweep specs load");
    let fresh = table_executed_text(&registry, sv_core::parallel::default_jobs());
    assert!(!fresh.contains("VIOLATION:"), "executed gate violated:\n{fresh}");
    check_golden("table_executed.txt", &fresh, include_str!("golden/table_executed.txt"));
}

#[test]
fn table_optimality_matches_golden() {
    // The oracle's certificate as a pinned artifact: every suite loop on
    // the two CI-gate machines, heuristic vs proved-optimal II, with
    // every proved schedule replayed on the cycle-accurate executor. The
    // snapshot pins the committed gap table — a new gap, a lost proof
    // (`exhausted` above zero) or an executed-certificate violation all
    // surface as a reviewed diff, and the `VIOLATION:` check is the hard
    // gate.
    let mut registry = MachineRegistry::builtin();
    let dir = format!("{}/../../examples/machines", env!("CARGO_MANIFEST_DIR"));
    registry.load_dir(std::path::Path::new(&dir)).expect("sweep specs load");
    let fresh =
        table_optimality_text(&registry, &["paper", "vl4"], sv_core::parallel::default_jobs());
    assert!(!fresh.contains("VIOLATION:"), "optimality gate violated:\n{fresh}");
    assert!(fresh.contains(" 0 exhausted"), "oracle lost a proof:\n{fresh}");
    check_golden("table_optimality.txt", &fresh, include_str!("golden/table_optimality.txt"));
}

#[test]
fn stats_line_matches_golden() {
    let l = figure1_dot_product();
    let m = MachineConfig::figure1();
    let (_, report) = compile_checked(&l, &m, &DriverConfig::default()).unwrap();
    let line = mask_ns(&report.stats_json_line("fig1.dot", "figure1"));
    let fresh = format!("{line}\n");
    check_golden("stats_line.txt", &fresh, include_str!("golden/stats_line.txt"));
}

#[test]
fn mask_ns_only_touches_ns_fields() {
    let masked = mask_ns(
        "{\"partition_ns\":123456,\"kl_probes\":42,\"total_ns\":9,\"iis_tried\":[3,4]}",
    );
    assert_eq!(
        masked,
        "{\"partition_ns\":0,\"kl_probes\":42,\"total_ns\":0,\"iis_tried\":[3,4]}"
    );
}
