//! The harness determinism contract: sharding compilations over worker
//! threads must not change a single output byte.

use sv_bench::table2_text;

/// Table 2 rendered at `--jobs 1`, `4` and `8` is byte-for-byte
/// identical — the merge step reassembles results in job order, so worker
/// count (and scheduling nondeterminism between workers) is invisible.
#[test]
fn table2_is_byte_identical_across_job_counts() {
    let serial = table2_text(1);
    assert!(serial.contains("Table 2"), "sanity: rendered a table:\n{serial}");
    for jobs in [4, 8] {
        let par = table2_text(jobs);
        assert_eq!(serial, par, "table2 output diverged at jobs={jobs}");
    }
}
