//! # sv-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | target | paper artifact |
//! |---|---|
//! | `cargo run -p sv-bench --bin figure1` | Figure 1 (dot-product IIs) |
//! | `cargo run -p sv-bench --bin table2` | Table 2 (speedup vs modulo scheduling) |
//! | `cargo run -p sv-bench --bin table3` | Table 3 (per-loop ResMII/II wins) |
//! | `cargo run -p sv-bench --bin table4` | Table 4 (communication ablation) |
//! | `cargo run -p sv-bench --bin table5` | Table 5 (alignment ablation) |
//! | `cargo run -p sv-bench --bin table_ablation` | §3.2 tie-break ablation (extension) |
//! | `cargo bench -p sv-bench` | partitioner/scheduler micro-benchmarks |
//!
//! The harness compiles each workload loop under every technique, prices
//! it with the standard software-pipeline timing model, and aggregates
//! cycle-weighted speedups exactly as the paper does (whole-benchmark
//! cycles relative to the unrolled modulo-scheduling baseline).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use sv_core::parallel::{default_jobs, parse_jobs, run_ordered};
use sv_core::{
    compile_checked, CompilationReport, CompiledLoop, DriverConfig, SelectiveConfig, Strategy,
};
use sv_ir::Loop;
use sv_machine::{MachineConfig, MachineRegistry};
use sv_workloads::{all_benchmarks, BenchmarkSuite};

/// One technique's result on one loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyOutcome {
    /// Total cycles over the loop's whole program contribution.
    pub cycles: u64,
    /// Kernel II per original iteration.
    pub ii_per_orig: f64,
    /// ResMII per original iteration.
    pub resmii_per_orig: f64,
}

/// All techniques' results on one loop.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Loop name.
    pub name: String,
    /// True when the baseline II is resource-constrained rather than
    /// recurrence-constrained (Table 3 only counts these).
    pub resource_limited: bool,
    /// Outcome per strategy.
    pub outcomes: BTreeMap<&'static str, StrategyOutcome>,
    /// The driver's [`CompilationReport`] per strategy — fallback
    /// provenance and [`sv_core::PassStats`] (the `--stats` dumps).
    pub reports: BTreeMap<&'static str, CompilationReport>,
}

/// The strategies evaluated by the tables, with stable keys.
pub const EVALUATED: [(Strategy, &str); 4] = [
    (Strategy::ModuloOnly, "modulo"),
    (Strategy::Traditional, "traditional"),
    (Strategy::Full, "full"),
    (Strategy::Selective, "selective"),
];

/// A whole benchmark's evaluation.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-loop results.
    pub loops: Vec<LoopReport>,
}

fn outcome(c: &CompiledLoop, m: &MachineConfig) -> StrategyOutcome {
    StrategyOutcome {
        cycles: c.total_cycles(m),
        ii_per_orig: c.ii_per_original_iteration(),
        resmii_per_orig: c.resmii_per_original_iteration(),
    }
}

/// A workload loop that failed to compile under one of the evaluated
/// techniques.
#[derive(Debug)]
pub struct EvalError {
    /// The loop's name.
    pub looop: String,
    /// The technique that failed.
    pub strategy: Strategy,
    /// The driver's diagnosis (boxed: `CompileError` carries loop dumps).
    pub error: Box<sv_core::CompileError>,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed under {}: {}", self.looop, self.strategy, self.error)
    }
}

impl std::error::Error for EvalError {}

/// Compile one (loop, strategy) job through the hardened driver — the
/// unit of work the parallel harness shards. Returns the priced outcome,
/// the driver's report, and whether the produced baseline schedule was
/// resource-limited (meaningful for [`Strategy::ModuloOnly`] only).
fn compile_job(
    l: &Loop,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
    s: Strategy,
) -> Result<(StrategyOutcome, CompilationReport, bool), EvalError> {
    let dcfg = DriverConfig { strategy: s, selective: cfg.clone(), ..DriverConfig::default() };
    let (c, report) = compile_checked(l, m, &dcfg).map_err(|error| EvalError {
        looop: l.name.clone(),
        strategy: s,
        error: Box::new(error),
    })?;
    let sched = &c.segments[0].schedule;
    let resource_limited = sched.resmii >= sched.recmii;
    Ok((outcome(&c, m), report, resource_limited))
}

/// Compile one loop under every evaluated technique (serially).
///
/// # Errors
///
/// Returns an [`EvalError`] naming the loop and technique if any
/// compilation fails — workload loops normally always schedule.
pub fn evaluate_loop(
    l: &Loop,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
) -> Result<LoopReport, EvalError> {
    let mut outcomes = BTreeMap::new();
    let mut reports = BTreeMap::new();
    let mut resource_limited = true;
    for (s, key) in EVALUATED {
        let (o, report, rl) = compile_job(l, m, cfg, s)?;
        if s == Strategy::ModuloOnly {
            resource_limited = rl;
        }
        outcomes.insert(key, o);
        reports.insert(key, report);
    }
    Ok(LoopReport { name: l.name.clone(), resource_limited, outcomes, reports })
}

/// Evaluate a whole suite on `jobs` worker threads.
///
/// The job list is the flattened (loop × strategy) cross product in the
/// exact order the serial path visits it, fanned out through
/// [`run_ordered`] and merged back in job order — so the report (and the
/// first error, if any) is identical for every `jobs` value, including
/// `jobs == 1` (which runs inline on the calling thread).
///
/// # Errors
///
/// Returns the first job's [`EvalError`] (in serial visit order) if any
/// compilation fails.
pub fn evaluate_suite(
    suite: &BenchmarkSuite,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
    jobs: usize,
) -> Result<SuiteReport, EvalError> {
    let job_list: Vec<(usize, Strategy)> = suite
        .loops
        .iter()
        .enumerate()
        .flat_map(|(li, _)| EVALUATED.iter().map(move |&(s, _)| (li, s)))
        .collect();
    let results = run_ordered(&job_list, jobs, |_, &(li, s)| {
        compile_job(&suite.loops[li], m, cfg, s)
    });

    let mut results = results.into_iter();
    let mut loops = Vec::with_capacity(suite.loops.len());
    for l in &suite.loops {
        let mut outcomes = BTreeMap::new();
        let mut reports = BTreeMap::new();
        let mut resource_limited = true;
        for (s, key) in EVALUATED {
            let (o, report, rl) = results.next().expect("one result per job")?;
            if s == Strategy::ModuloOnly {
                resource_limited = rl;
            }
            outcomes.insert(key, o);
            reports.insert(key, report);
        }
        loops.push(LoopReport { name: l.name.clone(), resource_limited, outcomes, reports });
    }
    Ok(SuiteReport { name: suite.name, loops })
}

/// [`evaluate_suite`], printing the error and exiting on failure — the
/// shared unhappy path of the table binaries.
pub fn evaluate_suite_or_exit(
    suite: &BenchmarkSuite,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
    jobs: usize,
) -> SuiteReport {
    match evaluate_suite(suite, m, cfg, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sv-bench: {e}");
            std::process::exit(1);
        }
    }
}

/// Extract a `--jobs N` flag from a pre-collected argv (mutating it), or
/// fall back to [`default_jobs`] (the `SV_JOBS` environment variable, then
/// the machine's available parallelism). Exits with status 2 on a
/// malformed value — the shared flag handling of every table binary.
pub fn take_jobs_flag(args: &mut Vec<String>) -> usize {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return default_jobs();
    };
    if i + 1 >= args.len() {
        eprintln!("sv-bench: --jobs needs a positive worker count");
        std::process::exit(2);
    }
    match parse_jobs(&args[i + 1]) {
        Ok(n) => {
            args.drain(i..=i + 1);
            n
        }
        Err(e) => {
            eprintln!("sv-bench: --jobs: {e}");
            std::process::exit(2);
        }
    }
}

impl SuiteReport {
    /// Whole-benchmark speedup of `strategy` over the modulo-scheduling
    /// baseline: `Σ baseline cycles / Σ strategy cycles`.
    pub fn speedup(&self, strategy: &str) -> f64 {
        let base: u64 = self.loops.iter().map(|l| l.outcomes["modulo"].cycles).sum();
        let s: u64 = self.loops.iter().map(|l| l.outcomes[strategy].cycles).sum();
        base as f64 / s as f64
    }

    /// Table 3 counts: over resource-limited loops, how often selective
    /// vectorization's bound/II is better than, equal to, or worse than the
    /// best competing technique. `metric` selects ResMII or final II.
    pub fn table3_counts(&self, metric: Table3Metric) -> Counts {
        let mut c = Counts::default();
        for l in &self.loops {
            if !l.resource_limited {
                continue;
            }
            let get = |key: &str| -> f64 {
                let o = &l.outcomes[key];
                match metric {
                    Table3Metric::ResMii => o.resmii_per_orig,
                    Table3Metric::Ii => o.ii_per_orig,
                }
            };
            let sel = get("selective");
            let best_other = get("modulo").min(get("traditional")).min(get("full"));
            const EPS: f64 = 1e-9;
            if sel + EPS < best_other {
                c.better += 1;
            } else if sel > best_other + EPS {
                c.worse += 1;
            } else {
                c.equal += 1;
            }
        }
        c
    }

    /// Number of resource-limited loops.
    pub fn resource_limited_loops(&self) -> usize {
        self.loops.iter().filter(|l| l.resource_limited).count()
    }
}

/// Which metric a Table 3 comparison uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table3Metric {
    /// The resource-constrained lower bound.
    ResMii,
    /// The achieved initiation interval.
    Ii,
}

/// Better/equal/worse tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Strictly better loops.
    pub better: usize,
    /// Ties.
    pub equal: usize,
    /// Strictly worse loops.
    pub worse: usize,
}

impl Counts {
    /// Total loops tallied.
    pub fn total(&self) -> usize {
        self.better + self.equal + self.worse
    }
}

/// The paper's Table 1 (the machine description used for a run), one
/// trailing-newline-terminated block.
pub fn machine_text(m: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine `{}`:", m.name);
    let _ = writeln!(
        out,
        "  issue {} | int {} | fp {} | mem {} | branch {} | vector {} | merge {} | VL {}",
        m.issue_width,
        m.int_units,
        m.fp_units,
        m.mem_units,
        m.branch_units,
        m.vector_units,
        m.merge_units,
        m.vector_length
    );
    let _ = writeln!(
        out,
        "  latencies: int {}/{}/{} fp {}/{}/{} load {} branch {}",
        m.lat.int_alu,
        m.lat.int_mul,
        m.lat.int_div,
        m.lat.fp_alu,
        m.lat.fp_mul,
        m.lat.fp_div,
        m.lat.load,
        m.lat.branch
    );
    let _ = writeln!(out, "  comm {:?} | alignment {:?}", m.comm, m.alignment);
    out
}

/// Print the paper's Table 1 (the machine description used for a run).
pub fn print_machine(m: &MachineConfig) {
    print!("{}", machine_text(m));
}

/// The paper's measured Table 2 speedups, printed alongside ours.
pub const TABLE2_PAPER: [(&str, f64, f64, f64); 9] = [
    ("093.nasa7", 0.18, 0.76, 1.04),
    ("101.tomcatv", 0.71, 0.99, 1.38),
    ("103.su2cor", 0.63, 0.94, 1.15),
    ("104.hydro2d", 0.94, 1.00, 1.03),
    ("125.turb3d", 0.38, 0.93, 0.95),
    ("146.wave5", 0.76, 0.96, 1.03),
    ("171.swim", 1.01, 1.00, 1.17),
    ("172.mgrid", 0.53, 0.99, 1.26),
    ("301.apsi", 0.51, 0.97, 1.02),
];

/// Render the paper's Table 2 (whole-suite speedups vs modulo scheduling
/// on the Table 1 machine) as the exact text the `table2` binary prints.
///
/// The output is a pure function of the workloads and the machine model —
/// `jobs` only shards the compilations, so every worker count produces
/// byte-identical text (the determinism contract of the harness, asserted
/// by the `table2_determinism` integration test and `ci.sh`).
pub fn table2_text(jobs: usize) -> String {
    let m = MachineConfig::paper_default();
    let cfg = SelectiveConfig::default();
    let mut out = machine_text(&m);
    out.push('\n');
    out.push_str("Table 2: speedup vs modulo scheduling (paper values in parentheses)\n");
    let _ = writeln!(
        out,
        "{:<14} {:>18} {:>18} {:>18}",
        "benchmark", "traditional", "full", "selective"
    );
    let mut sel_product = 1.0f64;
    let mut sel_max: f64 = 0.0;
    let suites = all_benchmarks();
    for suite in &suites {
        let r = evaluate_suite_or_exit(suite, &m, &cfg, jobs);
        let (t, f, s) =
            (r.speedup("traditional"), r.speedup("full"), r.speedup("selective"));
        let paper = TABLE2_PAPER.iter().find(|p| p.0 == suite.name).expect("known suite");
        let _ = writeln!(
            out,
            "{:<14} {:>9.2} ({:>5.2}) {:>10.2} ({:>4.2}) {:>10.2} ({:>4.2})",
            suite.name, t, paper.1, f, paper.2, s, paper.3
        );
        sel_product *= s;
        sel_max = sel_max.max(s);
    }
    let geo = sel_product.powf(1.0 / suites.len() as f64);
    out.push('\n');
    let _ = writeln!(
        out,
        "selective: geometric-mean speedup {geo:.2} (paper arithmetic mean 1.11), max {sel_max:.2} (paper 1.38)"
    );
    out
}

/// Render the executed-schedule report (the `table_executed` binary's
/// output): every registry machine × benchmark suite, a slice of each
/// suite's loops compiled under the evaluated techniques and **replayed
/// on the cycle-accurate VLIW executor** ([`sv_sim::executed_selfcheck`]).
/// Each row tallies the executed pieces, how many kernels sustained
/// exactly their scheduled II, how many were short-trip (kernel never
/// filled), and the interlock stall total — any gate violation (state
/// divergence from the reference engine, measured II above scheduled, a
/// stall) is printed inline and fails the golden snapshot.
///
/// Like the other tables, the output is a pure function of the workloads
/// and the registry: `jobs` only shards the (loop × strategy) cases.
pub fn table_executed_text(registry: &MachineRegistry, jobs: usize) -> String {
    /// Loops executed per suite — enough to cover the hand kernels plus
    /// synthetic fill without making the snapshot rebuild minutes long.
    const LOOPS_PER_SUITE: usize = 3;

    struct CaseTally {
        pieces: u64,
        at_ii: u64,
        short: u64,
        stalls: u64,
    }

    let suites = all_benchmarks();
    let machines: Vec<(String, MachineConfig)> =
        registry.iter().map(|(n, m, _)| (n.to_string(), m.clone())).collect();
    let job_list: Vec<(usize, usize, usize, Strategy)> = machines
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| {
            suites.iter().enumerate().flat_map(move |(si, suite)| {
                suite
                    .loops
                    .iter()
                    .take(LOOPS_PER_SUITE)
                    .enumerate()
                    .flat_map(move |(li, _)| {
                        EVALUATED.iter().map(move |&(s, _)| (mi, si, li, s))
                    })
            })
        })
        .collect();
    let results = run_ordered(&job_list, jobs, |_, &(mi, si, li, s)| {
        let m = &machines[mi].1;
        let mut l = suites[si].loops[li].clone();
        l.invocations = 1; // execute one invocation; the gate is per-piece
        let dcfg = DriverConfig::for_strategy(s);
        match sv_sim::compile_executed(&l, m, &dcfg) {
            Ok((_, _, pieces)) => {
                let mut t = CaseTally { pieces: 0, at_ii: 0, short: 0, stalls: 0 };
                for p in &pieces {
                    t.pieces += 1;
                    t.stalls += p.report.stall_cycles;
                    if p.report.kernel_executions == 0 {
                        t.short += 1;
                    } else if p.report.measured_ii() == Some(f64::from(p.scheduled_ii)) {
                        t.at_ii += 1;
                    }
                }
                Ok(t)
            }
            Err(e) => Err(format!("{}/{s}: {e}", l.name)),
        }
    });

    let mut out = String::new();
    out.push_str("Executed schedules: measured steady-state II vs scheduled II\n");
    out.push_str(&format!(
        "(first {LOOPS_PER_SUITE} loops per suite x {} techniques, one invocation each)\n",
        EVALUATED.len()
    ));
    let _ = writeln!(
        out,
        "{:<16} {:<14} {:>6} {:>7} {:>6} {:>6} {:>7}",
        "machine", "suite", "cases", "pieces", "at-II", "short", "stalls"
    );
    let mut violations = Vec::new();
    let mut results = results.into_iter();
    for (mname, _) in &machines {
        for suite in &suites {
            let cases = suite.loops.len().min(LOOPS_PER_SUITE) * EVALUATED.len();
            let mut row = CaseTally { pieces: 0, at_ii: 0, short: 0, stalls: 0 };
            for _ in 0..cases {
                match results.next().expect("one result per job") {
                    Ok(t) => {
                        row.pieces += t.pieces;
                        row.at_ii += t.at_ii;
                        row.short += t.short;
                        row.stalls += t.stalls;
                    }
                    Err(e) => violations.push(format!("{mname}/{}: {e}", suite.name)),
                }
            }
            let _ = writeln!(
                out,
                "{mname:<16} {:<14} {cases:>6} {:>7} {:>6} {:>6} {:>7}",
                suite.name, row.pieces, row.at_ii, row.short, row.stalls
            );
        }
    }
    out.push('\n');
    if violations.is_empty() {
        out.push_str(
            "every piece: state bit-identical to the reference engine, \
             measured steady-state II == scheduled II, zero stalls\n",
        );
    } else {
        for v in &violations {
            let _ = writeln!(out, "VIOLATION: {v}");
        }
    }
    out
}

/// Render the optimality report (the `table_optimality` binary's
/// output): every suite loop on the named registry machines, compiled
/// with the Kernighan–Lin heuristic ([`Strategy::Selective`]) and with
/// the exact branch-and-bound oracle ([`Strategy::Optimal`]), the proved
/// kernel IIs compared, and **every proved schedule replayed on the
/// cycle-accurate executor** ([`sv_sim::compile_executed`]) so the
/// certificate is not just structural: state bit-identical to the
/// reference engine, measured steady-state II equal to the proved II,
/// zero interlock stalls.
///
/// Loops the oracle cannot prove within the default budget degrade to
/// the heuristic and are tallied in the `exhausted` column; every
/// strict improvement is listed at the bottom — that list is the
/// committed gap table the CI optimality gate checks for drift.
///
/// Like the other tables, the output is a pure function of the
/// workloads and the registry (the oracle's budgets are deterministic
/// node/probe counts): `jobs` only shards the (loop × machine) cases.
///
/// # Panics
///
/// Panics when a requested machine name is not in the registry.
pub fn table_optimality_text(
    registry: &MachineRegistry,
    machine_names: &[&str],
    jobs: usize,
) -> String {
    struct Case {
        heur_ii: u32,
        opt_ii: u32,
        proved: bool,
        executed_at_ii: bool,
        short_trip: bool,
    }

    let suites = all_benchmarks();
    let machines: Vec<(String, MachineConfig)> = machine_names
        .iter()
        .map(|n| {
            let m = registry
                .get(n)
                .unwrap_or_else(|| panic!("machine `{n}` not in the registry"));
            ((*n).to_string(), m.clone())
        })
        .collect();
    let job_list: Vec<(usize, usize, usize)> = machines
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| {
            suites.iter().enumerate().flat_map(move |(si, suite)| {
                (0..suite.loops.len()).map(move |li| (mi, si, li))
            })
        })
        .collect();
    let results = run_ordered(&job_list, jobs, |_, &(mi, si, li)| {
        let m = &machines[mi].1;
        let mut l = suites[si].loops[li].clone();
        // One invocation with a clamped trip keeps the executed replay
        // cheap; the schedule (and so the proved II) does not depend on
        // the trip count. Register-carried state does not flow into
        // cleanup loops in this simulator, so those loops execute a
        // remainder-free trip (as in the equivalence suite).
        l.invocations = 1;
        if l.trip.count > 512 {
            l.trip.count = 509;
        }
        if sv_sim::has_register_state_across_cleanup(&l) {
            l.trip.count &= !3;
            if l.trip.count == 0 {
                l.trip.count = 4;
            }
        }
        let heur = compile_checked(&l, m, &DriverConfig::for_strategy(Strategy::Selective))
            .map_err(|e| format!("{}/selective: {e}", l.name))?;
        let dcfg = DriverConfig::for_strategy(Strategy::Optimal);
        let (c, report, pieces) = sv_sim::compile_executed(&l, m, &dcfg)
            .map_err(|e| format!("{}/optimal: {e}", l.name))?;
        let main = &pieces[0];
        Ok::<Case, String>(Case {
            heur_ii: heur.0.segments[0].schedule.ii,
            opt_ii: c.segments[0].schedule.ii,
            proved: report.delivered == Strategy::Optimal,
            executed_at_ii: main.report.measured_ii()
                == Some(f64::from(main.scheduled_ii)),
            short_trip: main.report.kernel_executions == 0,
        })
    });

    let mut out = String::new();
    out.push_str("Optimal-II oracle vs the Kernighan-Lin heuristic\n");
    out.push_str(
        "(every suite loop; proved schedules replayed on the cycle-accurate executor)\n",
    );
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>5} {:>7} {:>9} {:>5} {:>8} {:>7} {:>6}",
        "machine", "suite", "loops", "proved", "exhausted", "gaps", "heur-II", "opt-II", "short"
    );
    let mut gaps: Vec<String> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut total = 0usize;
    let mut total_proved = 0usize;
    let mut total_gaps = 0usize;
    let mut uncertified = 0usize;
    let mut results = results.into_iter();
    for (mname, _) in &machines {
        for suite in &suites {
            let (mut proved, mut exhausted, mut gap) = (0usize, 0usize, 0usize);
            let (mut heur_sum, mut opt_sum) = (0u64, 0u64);
            let mut short = 0usize;
            for l in &suite.loops {
                total += 1;
                match results.next().expect("one result per job") {
                    Ok(case) => {
                        heur_sum += u64::from(case.heur_ii);
                        opt_sum += u64::from(case.opt_ii);
                        if case.proved {
                            proved += 1;
                            if case.short_trip {
                                short += 1;
                            } else if !case.executed_at_ii {
                                uncertified += 1;
                                violations.push(format!(
                                    "{mname}/{}: executed II above proved II",
                                    l.name
                                ));
                            }
                            if case.opt_ii < case.heur_ii {
                                gap += 1;
                                gaps.push(format!(
                                    "  {mname:<10} {:<24} {} -> {}",
                                    l.name, case.heur_ii, case.opt_ii
                                ));
                            }
                        } else {
                            exhausted += 1;
                        }
                    }
                    Err(e) => violations.push(format!("{mname}/{e}")),
                }
            }
            total_proved += proved;
            total_gaps += gap;
            let _ = writeln!(
                out,
                "{mname:<10} {:<14} {:>5} {proved:>7} {exhausted:>9} {gap:>5} {heur_sum:>8} \
                 {opt_sum:>7} {short:>6}",
                suite.name,
                suite.loops.len()
            );
        }
    }
    out.push('\n');
    if gaps.is_empty() {
        out.push_str("no strict improvements: the heuristic is optimal everywhere\n");
    } else {
        out.push_str("gap cases (heuristic II -> proved optimal II):\n");
        for g in &gaps {
            out.push_str(g);
            out.push('\n');
        }
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "summary: {total} cases, {total_proved} proved, {} exhausted, {total_gaps} gaps",
        total - total_proved
    );
    if violations.is_empty() && uncertified == 0 {
        out.push_str(
            "every proved schedule: state bit-identical to the reference engine, \
             measured steady-state II == proved II, zero stalls\n",
        );
    } else {
        for v in &violations {
            let _ = writeln!(out, "VIOLATION: {v}");
        }
    }
    out
}

/// Render the architectural sweep (the `table_arch` binary's output):
/// whole-suite geometric-mean speedups of full and selective
/// vectorization over the modulo-scheduling baseline, one row per
/// registered machine in sorted name order.
///
/// The sweep set is the machine registry — builtins plus whatever spec
/// directory the caller loaded (`examples/machines/` by default in the
/// binary), so adding a spec file adds a row without touching code. Like
/// [`table2_text`], the output is a pure function of the workloads and
/// the registry: `jobs` only shards the compilations, and the golden
/// snapshot test pins the bytes.
pub fn table_arch_text(registry: &MachineRegistry, jobs: usize) -> String {
    fn geo_mean(xs: &[f64]) -> f64 {
        xs.iter().product::<f64>().powf(1.0 / xs.len() as f64)
    }
    let cfg = SelectiveConfig::default();
    let mut out = String::new();
    out.push_str("Whole-suite geometric-mean speedup vs modulo scheduling\n");
    let _ = writeln!(
        out,
        "{:<16} {:<18} {:>8} {:>11}",
        "machine", "(description)", "full", "selective"
    );
    for (name, m, _source) in registry.iter() {
        let mut full = Vec::new();
        let mut sel = Vec::new();
        for suite in all_benchmarks() {
            let r = evaluate_suite_or_exit(&suite, m, &cfg, jobs);
            full.push(r.speedup("full"));
            sel.push(r.speedup("selective"));
        }
        let _ = writeln!(
            out,
            "{name:<16} {:<18} {:>7.2}x {:>10.2}x",
            m.name,
            geo_mean(&full),
            geo_mean(&sel)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workloads::benchmark;

    #[test]
    fn tomcatv_selective_beats_baseline() {
        let m = MachineConfig::paper_default();
        let r = evaluate_suite(&benchmark("tomcatv").unwrap(), &m, &SelectiveConfig::default(), 1)
            .unwrap();
        let sel = r.speedup("selective");
        let full = r.speedup("full");
        let trad = r.speedup("traditional");
        assert!(sel > 1.05, "selective speedup {sel}");
        assert!(sel > full, "selective {sel} vs full {full}");
        assert!(sel > trad, "selective {sel} vs traditional {trad}");
    }

    #[test]
    fn predicated_kernel_vectorizes_profitably() {
        // swim.wetdry: an FP-bound conditional saxpy (cubic drag, mask
        // compare, select). The cmp/select chain vectorizes like any
        // elementwise op, so the partitioner can split the chain across
        // the scalar FP units and the vector unit — selective must beat
        // the unrolled scalar baseline, traditional vectorization, and
        // all-or-nothing full vectorization on the paper machine.
        let m = MachineConfig::paper_default();
        let suite = benchmark("swim").unwrap();
        let l = suite
            .loops
            .iter()
            .find(|l| l.name.ends_with("wetdry"))
            .expect("swim.wetdry in suite");
        let r = evaluate_loop(l, &m, &SelectiveConfig::default()).unwrap();
        let sel = r.outcomes["selective"].cycles;
        let trad = r.outcomes["traditional"].cycles;
        let full = r.outcomes["full"].cycles;
        let base = r.outcomes["modulo"].cycles;
        assert!(sel < trad, "selective {sel} vs traditional {trad}");
        assert!(sel < full, "selective {sel} vs full {full}");
        assert!(sel < base, "selective {sel} vs modulo baseline {base}");
    }

    #[test]
    fn table3_counts_add_up() {
        let m = MachineConfig::paper_default();
        let r = evaluate_suite(&benchmark("tomcatv").unwrap(), &m, &SelectiveConfig::default(), 1)
            .unwrap();
        let c = r.table3_counts(Table3Metric::ResMii);
        assert_eq!(c.total(), r.resource_limited_loops());
    }

    #[test]
    fn parallel_suite_report_matches_serial() {
        let m = MachineConfig::paper_default();
        let suite = benchmark("swim").unwrap();
        let cfg = SelectiveConfig::default();
        let serial = evaluate_suite(&suite, &m, &cfg, 1).unwrap();
        for jobs in [2, 4, 8] {
            let par = evaluate_suite(&suite, &m, &cfg, jobs).unwrap();
            assert_eq!(par.loops.len(), serial.loops.len());
            for (a, b) in serial.loops.iter().zip(&par.loops) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.resource_limited, b.resource_limited);
                assert_eq!(a.outcomes, b.outcomes, "jobs={jobs} loop={}", a.name);
            }
        }
    }

    #[test]
    fn loop_reports_carry_pass_stats() {
        let m = MachineConfig::paper_default();
        let suite = benchmark("swim").unwrap();
        let r = evaluate_suite(&suite, &m, &SelectiveConfig::default(), 2).unwrap();
        let l = &r.loops[0];
        let sel = &l.reports["selective"];
        assert!(sel.stats.schedules > 0);
        assert!(sel.stats.kl_probes > 0, "selective report carries KL effort");
        assert_eq!(l.reports["modulo"].stats.kl_probes, 0);
    }

    #[test]
    fn take_jobs_flag_extracts_and_defaults() {
        let mut args = vec!["--jobs".to_string(), "3".to_string(), "x".to_string()];
        assert_eq!(take_jobs_flag(&mut args), 3);
        assert_eq!(args, vec!["x".to_string()]);
        let mut none = vec!["y".to_string()];
        assert!(take_jobs_flag(&mut none) >= 1);
        assert_eq!(none, vec!["y".to_string()]);
    }
}
