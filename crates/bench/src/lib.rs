//! # sv-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | target | paper artifact |
//! |---|---|
//! | `cargo run -p sv-bench --bin figure1` | Figure 1 (dot-product IIs) |
//! | `cargo run -p sv-bench --bin table2` | Table 2 (speedup vs modulo scheduling) |
//! | `cargo run -p sv-bench --bin table3` | Table 3 (per-loop ResMII/II wins) |
//! | `cargo run -p sv-bench --bin table4` | Table 4 (communication ablation) |
//! | `cargo run -p sv-bench --bin table5` | Table 5 (alignment ablation) |
//! | `cargo run -p sv-bench --bin table_ablation` | §3.2 tie-break ablation (extension) |
//! | `cargo bench -p sv-bench` | partitioner/scheduler micro-benchmarks |
//!
//! The harness compiles each workload loop under every technique, prices
//! it with the standard software-pipeline timing model, and aggregates
//! cycle-weighted speedups exactly as the paper does (whole-benchmark
//! cycles relative to the unrolled modulo-scheduling baseline).

use std::collections::BTreeMap;
use sv_core::{compile_with, CompiledLoop, SelectiveConfig, Strategy};
use sv_ir::Loop;
use sv_machine::MachineConfig;
use sv_workloads::BenchmarkSuite;

/// One technique's result on one loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyOutcome {
    /// Total cycles over the loop's whole program contribution.
    pub cycles: u64,
    /// Kernel II per original iteration.
    pub ii_per_orig: f64,
    /// ResMII per original iteration.
    pub resmii_per_orig: f64,
}

/// All techniques' results on one loop.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Loop name.
    pub name: String,
    /// True when the baseline II is resource-constrained rather than
    /// recurrence-constrained (Table 3 only counts these).
    pub resource_limited: bool,
    /// Outcome per strategy.
    pub outcomes: BTreeMap<&'static str, StrategyOutcome>,
}

/// The strategies evaluated by the tables, with stable keys.
pub const EVALUATED: [(Strategy, &str); 4] = [
    (Strategy::ModuloOnly, "modulo"),
    (Strategy::Traditional, "traditional"),
    (Strategy::Full, "full"),
    (Strategy::Selective, "selective"),
];

/// A whole benchmark's evaluation.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-loop results.
    pub loops: Vec<LoopReport>,
}

fn outcome(c: &CompiledLoop, m: &MachineConfig) -> StrategyOutcome {
    StrategyOutcome {
        cycles: c.total_cycles(m),
        ii_per_orig: c.ii_per_original_iteration(),
        resmii_per_orig: c.resmii_per_original_iteration(),
    }
}

/// A workload loop that failed to compile under one of the evaluated
/// techniques.
#[derive(Debug)]
pub struct EvalError {
    /// The loop's name.
    pub looop: String,
    /// The technique that failed.
    pub strategy: Strategy,
    /// The driver's diagnosis (boxed: `CompileError` carries loop dumps).
    pub error: Box<sv_core::CompileError>,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed under {}: {}", self.looop, self.strategy, self.error)
    }
}

impl std::error::Error for EvalError {}

/// Compile one loop under every evaluated technique.
///
/// # Errors
///
/// Returns an [`EvalError`] naming the loop and technique if any
/// compilation fails — workload loops normally always schedule.
pub fn evaluate_loop(
    l: &Loop,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
) -> Result<LoopReport, EvalError> {
    let mut outcomes = BTreeMap::new();
    let mut resource_limited = true;
    for (s, key) in EVALUATED {
        let c = compile_with(l, m, s, cfg).map_err(|error| EvalError {
            looop: l.name.clone(),
            strategy: s,
            error: Box::new(error),
        })?;
        if s == Strategy::ModuloOnly {
            let sched = &c.segments[0].schedule;
            resource_limited = sched.resmii >= sched.recmii;
        }
        outcomes.insert(key, outcome(&c, m));
    }
    Ok(LoopReport { name: l.name.clone(), resource_limited, outcomes })
}

/// Evaluate a whole suite, fanning the loops out across threads (loop
/// compilations are independent).
///
/// # Errors
///
/// Returns the first loop's [`EvalError`] if any loop fails to compile.
pub fn evaluate_suite(
    suite: &BenchmarkSuite,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
) -> Result<SuiteReport, EvalError> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(suite.loops.len().max(1));
    let chunk = suite.loops.len().div_ceil(threads.max(1)).max(1);
    let mut chunks: Vec<Result<Vec<LoopReport>, EvalError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = suite
            .loops
            .chunks(chunk)
            .map(|ls| {
                scope.spawn(move || {
                    ls.iter()
                        .map(|l| evaluate_loop(l, m, cfg))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("evaluation worker panicked"));
        }
    });
    let loops = chunks.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SuiteReport { name: suite.name, loops: loops.into_iter().flatten().collect() })
}

/// [`evaluate_suite`], printing the error and exiting on failure — the
/// shared unhappy path of the table binaries.
pub fn evaluate_suite_or_exit(
    suite: &BenchmarkSuite,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
) -> SuiteReport {
    match evaluate_suite(suite, m, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sv-bench: {e}");
            std::process::exit(1);
        }
    }
}

impl SuiteReport {
    /// Whole-benchmark speedup of `strategy` over the modulo-scheduling
    /// baseline: `Σ baseline cycles / Σ strategy cycles`.
    pub fn speedup(&self, strategy: &str) -> f64 {
        let base: u64 = self.loops.iter().map(|l| l.outcomes["modulo"].cycles).sum();
        let s: u64 = self.loops.iter().map(|l| l.outcomes[strategy].cycles).sum();
        base as f64 / s as f64
    }

    /// Table 3 counts: over resource-limited loops, how often selective
    /// vectorization's bound/II is better than, equal to, or worse than the
    /// best competing technique. `metric` selects ResMII or final II.
    pub fn table3_counts(&self, metric: Table3Metric) -> Counts {
        let mut c = Counts::default();
        for l in &self.loops {
            if !l.resource_limited {
                continue;
            }
            let get = |key: &str| -> f64 {
                let o = &l.outcomes[key];
                match metric {
                    Table3Metric::ResMii => o.resmii_per_orig,
                    Table3Metric::Ii => o.ii_per_orig,
                }
            };
            let sel = get("selective");
            let best_other = get("modulo").min(get("traditional")).min(get("full"));
            const EPS: f64 = 1e-9;
            if sel + EPS < best_other {
                c.better += 1;
            } else if sel > best_other + EPS {
                c.worse += 1;
            } else {
                c.equal += 1;
            }
        }
        c
    }

    /// Number of resource-limited loops.
    pub fn resource_limited_loops(&self) -> usize {
        self.loops.iter().filter(|l| l.resource_limited).count()
    }
}

/// Which metric a Table 3 comparison uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table3Metric {
    /// The resource-constrained lower bound.
    ResMii,
    /// The achieved initiation interval.
    Ii,
}

/// Better/equal/worse tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Strictly better loops.
    pub better: usize,
    /// Ties.
    pub equal: usize,
    /// Strictly worse loops.
    pub worse: usize,
}

impl Counts {
    /// Total loops tallied.
    pub fn total(&self) -> usize {
        self.better + self.equal + self.worse
    }
}

/// Print the paper's Table 1 (the machine description used for a run).
pub fn print_machine(m: &MachineConfig) {
    println!("machine `{}`:", m.name);
    println!(
        "  issue {} | int {} | fp {} | mem {} | branch {} | vector {} | merge {} | VL {}",
        m.issue_width,
        m.int_units,
        m.fp_units,
        m.mem_units,
        m.branch_units,
        m.vector_units,
        m.merge_units,
        m.vector_length
    );
    println!(
        "  latencies: int {}/{}/{} fp {}/{}/{} load {} branch {}",
        m.lat.int_alu,
        m.lat.int_mul,
        m.lat.int_div,
        m.lat.fp_alu,
        m.lat.fp_mul,
        m.lat.fp_div,
        m.lat.load,
        m.lat.branch
    );
    println!("  comm {:?} | alignment {:?}", m.comm, m.alignment);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workloads::benchmark;

    #[test]
    fn tomcatv_selective_beats_baseline() {
        let m = MachineConfig::paper_default();
        let r = evaluate_suite(&benchmark("tomcatv").unwrap(), &m, &SelectiveConfig::default()).unwrap();
        let sel = r.speedup("selective");
        let full = r.speedup("full");
        let trad = r.speedup("traditional");
        assert!(sel > 1.05, "selective speedup {sel}");
        assert!(sel > full, "selective {sel} vs full {full}");
        assert!(sel > trad, "selective {sel} vs traditional {trad}");
    }

    #[test]
    fn table3_counts_add_up() {
        let m = MachineConfig::paper_default();
        let r = evaluate_suite(&benchmark("tomcatv").unwrap(), &m, &SelectiveConfig::default()).unwrap();
        let c = r.table3_counts(Table3Metric::ResMii);
        assert_eq!(c.total(), r.resource_limited_loops());
    }
}
