//! Micro-benchmark for the `sv-sim` oracle execution engines.
//!
//! Times one full differential-oracle pass (`run_source` +
//! `run_compiled`) per case on both the pre-decoded fast engine and the
//! retained reference interpreters, plus one cycle-accurate executed
//! pass (`run_compiled_executed` — the `sched` engine) per case, over
//! the hand-written kernels of the benchmark suites plus a set of
//! seeded synthetic loops. Criterion-free and offline:
//! `std::time::Instant`, fixed seeds, median-of-K samples with
//! deterministic rep-doubling calibration.
//!
//! ```text
//! cargo run --release -p sv-bench --bin simbench                 # writes BENCH_sim.json
//! cargo run --release -p sv-bench --bin simbench -- --out b.json
//! cargo run --release -p sv-bench --bin simbench -- --check BENCH_sim.json
//! ```
//!
//! The output is the repo's benchmark trajectory file `BENCH_sim.json`:
//! one row per (case, engine) with `ns_per_iter` = wall time per executed
//! loop iteration, plus a summary with per-engine medians and the
//! fast-over-reference speedup (overall and kernel-suite-only). `--check
//! BASELINE` re-runs the measurement and fails when an engine's median
//! `ns_per_iter` regressed by more than `--tolerance` (default 0.25)
//! against the baseline file — the CI regression gate.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;
use sv_core::{compile_checked, CompiledLoop, DriverConfig, Strategy};
use sv_ir::Loop;
use sv_machine::MachineConfig;
use sv_sim::{
    has_register_state_across_cleanup, reference, run_compiled, run_compiled_executed,
    run_source,
};
use sv_workloads::{all_benchmarks, synth_loop, SynthProfile};

/// Seeds for the synthetic-loop portion of the case list.
const SYNTH_SEEDS: std::ops::Range<u64> = 0..8;

/// One measured row of `BENCH_sim.json`.
struct Row {
    case: String,
    /// Loop iterations executed per oracle pass (source + compiled).
    iters: u64,
    ns_per_iter: f64,
    engine: &'static str,
}

/// A compiled benchmark case, ready to execute repeatedly.
struct Case {
    name: String,
    looop: Loop,
    compiled: CompiledLoop,
}

/// The benchmark case list: every hand-written suite kernel (loop names
/// without the `.synth` filler marker) plus [`SYNTH_SEEDS`] seeded broad
/// synthetic loops, each compiled once (Selective, paper machine) outside
/// the timed region. Cases that fail to compile are reported and skipped.
fn cases() -> Vec<Case> {
    let m = MachineConfig::paper_default();
    let cfg = DriverConfig::for_strategy(Strategy::Selective);
    let mut out = Vec::new();
    let mut skipped = 0usize;
    let mut push = |name: String, l: Loop| match compile_checked(&l, &m, &cfg) {
        Ok((compiled, _)) => out.push(Case { name, looop: l, compiled }),
        Err(e) => {
            eprintln!("simbench: skipping {name}: {e}");
            skipped += 1;
        }
    };
    for suite in all_benchmarks() {
        for l in suite.loops {
            if !l.name.contains(".synth") {
                push(l.name.clone(), l);
            }
        }
    }
    let profile = SynthProfile::broad();
    for seed in SYNTH_SEEDS {
        let mut l = synth_loop(&format!("synth.{seed}"), &profile, seed);
        l.invocations = 1;
        if has_register_state_across_cleanup(&l) {
            l.trip.count = (l.trip.count & !3).max(4);
        }
        push(l.name.clone(), l);
    }
    if skipped > 0 {
        eprintln!("simbench: {skipped} case(s) skipped (not silently dropped from coverage)");
    }
    out
}

/// Median of a sample set (f64, by value).
fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample set");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Time `f` as the median of `runs` samples, each sample looping `f`
/// enough times (rep-doubling calibration) to take ≥ 2 ms. Returns
/// nanoseconds per single call of `f`.
fn time_median_ns(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut reps = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        if t.elapsed().as_nanos() >= 2_000_000 || reps >= 1 << 20 {
            break;
        }
        reps *= 2;
    }
    let samples = (0..runs)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..reps {
                f();
            }
            t.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    median(samples)
}

/// Measure one case on all three engines, appending three rows: the two
/// functional oracle engines (one source + one compiled pass each) and
/// the cycle-accurate schedule executor (`sched`, one executed compiled
/// pass — interlock, unit reservations and cycle accounting included).
fn measure(case: &Case, m: &MachineConfig, runs: usize, rows: &mut Vec<Row>) {
    // One oracle pass executes the source loop and the compiled plan, each
    // covering the full trip count once.
    let iters = 2 * case.looop.trip.count.max(1);
    let fast_ns = time_median_ns(runs, || {
        black_box(run_source(black_box(&case.looop)));
        black_box(run_compiled(black_box(&case.compiled)));
    });
    let ref_ns = time_median_ns(runs, || {
        black_box(reference::run_source(black_box(&case.looop)));
        black_box(reference::run_compiled(black_box(&case.compiled)));
    });
    let sched_iters = case.looop.trip.count.max(1);
    let sched_ns = time_median_ns(runs, || {
        black_box(
            run_compiled_executed(black_box(&case.compiled), black_box(m))
                .expect("executed gate holds for compiled cases"),
        );
    });
    rows.push(Row {
        case: case.name.clone(),
        iters,
        ns_per_iter: fast_ns / iters as f64,
        engine: "fast",
    });
    rows.push(Row {
        case: case.name.clone(),
        iters,
        ns_per_iter: ref_ns / iters as f64,
        engine: "reference",
    });
    rows.push(Row {
        case: case.name.clone(),
        iters: sched_iters,
        ns_per_iter: sched_ns / sched_iters as f64,
        engine: "sched",
    });
}

/// Median `ns_per_iter` of rows matching `engine`, restricted to kernel
/// cases when `kernel_only` (case names not starting with `synth.`).
fn engine_median(rows: &[Row], engine: &str, kernel_only: bool) -> f64 {
    let xs: Vec<f64> = rows
        .iter()
        .filter(|r| r.engine == engine && (!kernel_only || !r.case.starts_with("synth.")))
        .map(|r| r.ns_per_iter)
        .collect();
    median(xs)
}

/// Render `BENCH_sim.json`: one row per line for greppability, then a
/// summary object. No serde — the schema is fixed and tiny.
fn render(rows: &[Row]) -> String {
    let mut s = String::from("{\"schema\":\"sv-simbench/v1\",\"rows\":[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!(
            "{{\"case\":\"{}\",\"iters\":{},\"ns_per_iter\":{:.3},\"engine\":\"{}\"}}{sep}\n",
            r.case, r.iters, r.ns_per_iter, r.engine
        ));
    }
    let fast = engine_median(rows, "fast", false);
    let reference = engine_median(rows, "reference", false);
    let sched = engine_median(rows, "sched", false);
    let kfast = engine_median(rows, "fast", true);
    let kref = engine_median(rows, "reference", true);
    s.push_str(&format!(
        "],\"summary\":{{\"cases\":{},\"fast_median_ns_per_iter\":{fast:.3},\
         \"reference_median_ns_per_iter\":{reference:.3},\"speedup\":{:.2},\
         \"sched_median_ns_per_iter\":{sched:.3},\"sched_overhead\":{:.2},\
         \"kernel_fast_median_ns_per_iter\":{kfast:.3},\
         \"kernel_reference_median_ns_per_iter\":{kref:.3},\"kernel_speedup\":{:.2}}}}}\n",
        rows.len(),
        reference / fast,
        sched / fast,
        kref / kfast
    ));
    s
}

/// Minimal row extractor for `--check`: pulls `(case, engine,
/// ns_per_iter)` out of a `sv-simbench/v1` file without a JSON library.
/// Only accepts files this binary wrote (one row object per line).
fn parse_rows(text: &str) -> Result<Vec<Row>, String> {
    if !text.contains("\"schema\":\"sv-simbench/v1\"") {
        return Err("not a sv-simbench/v1 file".into());
    }
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
        Some(rest[..end].to_string())
    };
    let mut rows = Vec::new();
    for line in text.lines() {
        if !line.starts_with("{\"case\":") {
            continue;
        }
        let case = field(line, "case").ok_or("row missing case")?;
        let engine = match field(line, "engine").ok_or("row missing engine")?.as_str() {
            "fast" => "fast",
            "reference" => "reference",
            "sched" => "sched",
            other => return Err(format!("unknown engine `{other}`")),
        };
        let iters: u64 = field(line, "iters")
            .ok_or("row missing iters")?
            .parse()
            .map_err(|e| format!("bad iters: {e}"))?;
        let ns_per_iter: f64 = field(line, "ns_per_iter")
            .ok_or("row missing ns_per_iter")?
            .parse()
            .map_err(|e| format!("bad ns_per_iter: {e}"))?;
        rows.push(Row { case, iters, ns_per_iter, engine });
    }
    if rows.is_empty() {
        return Err("no rows found".into());
    }
    Ok(rows)
}

/// Compare a fresh measurement against a baseline file. The gate is the
/// per-engine *median* `ns_per_iter` (robust to single-case noise);
/// per-case regressions beyond tolerance are printed as warnings only.
fn check(fresh: &[Row], baseline: &[Row], tolerance: f64) -> Result<(), String> {
    for (b, f) in baseline.iter().zip(fresh) {
        if b.case == f.case && b.engine == f.engine && f.ns_per_iter > b.ns_per_iter * (1.0 + tolerance)
        {
            eprintln!(
                "simbench: warning: {} [{}] {:.1} → {:.1} ns/iter (> {:.0}% regression)",
                f.case,
                f.engine,
                b.ns_per_iter,
                f.ns_per_iter,
                tolerance * 100.0
            );
        }
    }
    for engine in ["fast", "reference", "sched"] {
        if !baseline.iter().any(|r| r.engine == engine) {
            // Baselines written before the executor existed carry no
            // `sched` rows; a new engine cannot regress against nothing.
            println!("simbench: no `{engine}` rows in baseline, skipping that gate");
            continue;
        }
        let b = engine_median(baseline, engine, false);
        let f = engine_median(fresh, engine, false);
        println!(
            "simbench: {engine} engine median {b:.1} ns/iter baseline, {f:.1} fresh ({:+.1}%)",
            (f / b - 1.0) * 100.0
        );
        if f > b * (1.0 + tolerance) {
            return Err(format!(
                "{engine} engine median regressed {:.1}% (tolerance {:.0}%)",
                (f / b - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    Ok(())
}

struct Opts {
    out: String,
    check_baseline: Option<String>,
    runs: usize,
    tolerance: f64,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        out: "BENCH_sim.json".into(),
        check_baseline: None,
        runs: 5,
        tolerance: 0.25,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => opts.out = args.next().ok_or("--out needs a path")?,
            "--check" => {
                opts.check_baseline = Some(args.next().ok_or("--check needs a baseline path")?);
            }
            "--runs" => {
                let v = args.next().ok_or("--runs needs a count")?;
                opts.runs = v.parse().map_err(|e| format!("bad --runs `{v}`: {e}"))?;
                if opts.runs == 0 {
                    return Err("--runs must be positive".into());
                }
            }
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a fraction like 0.25")?;
                opts.tolerance = v.parse().map_err(|e| format!("bad --tolerance `{v}`: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simbench: {e}");
            eprintln!(
                "usage: simbench [--out PATH] [--check BASELINE] [--runs K] [--tolerance F]"
            );
            return ExitCode::from(2);
        }
    };

    // Read and parse the baseline *before* the (minutes-long) measurement
    // so a bad path or file fails immediately.
    let baseline = match &opts.check_baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("simbench: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
            Ok(text) => match parse_rows(&text) {
                Err(e) => {
                    eprintln!("simbench: bad baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(rows) => Some(rows),
            },
        },
    };

    let cases = cases();
    let m = MachineConfig::paper_default();
    let mut rows = Vec::with_capacity(cases.len() * 3);
    for case in &cases {
        measure(case, &m, opts.runs, &mut rows);
    }
    let text = render(&rows);

    if let Some(baseline) = baseline {
        if let Err(e) = std::fs::write(&opts.out, &text) {
            eprintln!("simbench: cannot write {}: {e}", opts.out);
            return ExitCode::FAILURE;
        }
        match check(&rows, &baseline, opts.tolerance) {
            Ok(()) => {
                println!("simbench: no regression beyond {:.0}% tolerance", opts.tolerance * 100.0);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simbench: REGRESSION: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        if let Err(e) = std::fs::write(&opts.out, &text) {
            eprintln!("simbench: cannot write {}: {e}", opts.out);
            return ExitCode::FAILURE;
        }
        let fast = engine_median(&rows, "fast", false);
        let reference = engine_median(&rows, "reference", false);
        let kfast = engine_median(&rows, "fast", true);
        let kref = engine_median(&rows, "reference", true);
        println!(
            "simbench: {} cases → {}; fast {fast:.1} vs reference {reference:.1} ns/iter \
             ({:.2}x overall, {:.2}x kernel suite)",
            cases.len(),
            opts.out,
            reference / fast,
            kref / kfast
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn render_round_trips_through_parse_rows() {
        let rows = vec![
            Row { case: "093.nasa7.mxm".into(), iters: 200, ns_per_iter: 12.345, engine: "fast" },
            Row {
                case: "093.nasa7.mxm".into(),
                iters: 200,
                ns_per_iter: 47.5,
                engine: "reference",
            },
            Row { case: "synth.0".into(), iters: 64, ns_per_iter: 31.25, engine: "fast" },
            Row { case: "synth.0".into(), iters: 64, ns_per_iter: 99.5, engine: "reference" },
            Row { case: "synth.0".into(), iters: 32, ns_per_iter: 250.0, engine: "sched" },
        ];
        let text = render(&rows);
        let parsed = parse_rows(&text).expect("round-trips");
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed[0].case, "093.nasa7.mxm");
        assert_eq!(parsed[0].iters, 200);
        assert_eq!(parsed[1].engine, "reference");
        assert!((parsed[3].ns_per_iter - 99.5).abs() < 1e-9);
        assert_eq!(parsed[4].engine, "sched");
    }

    #[test]
    fn check_flags_median_regression_and_tolerates_noise() {
        let base = vec![
            Row { case: "a".into(), iters: 10, ns_per_iter: 100.0, engine: "fast" },
            Row { case: "a".into(), iters: 10, ns_per_iter: 400.0, engine: "reference" },
        ];
        let ok = vec![
            Row { case: "a".into(), iters: 10, ns_per_iter: 110.0, engine: "fast" },
            Row { case: "a".into(), iters: 10, ns_per_iter: 390.0, engine: "reference" },
        ];
        assert!(check(&ok, &base, 0.25).is_ok());
        let bad = vec![
            Row { case: "a".into(), iters: 10, ns_per_iter: 200.0, engine: "fast" },
            Row { case: "a".into(), iters: 10, ns_per_iter: 400.0, engine: "reference" },
        ];
        assert!(check(&bad, &base, 0.25).is_err());
    }
}
