//! Per-loop breakdown of one benchmark: cycles, II and ResMII per
//! technique for every loop. Usage:
//!
//! ```text
//! cargo run -p sv-bench --bin explain -- tomcatv
//! ```

use sv_bench::{evaluate_suite_or_exit, take_jobs_flag, EVALUATED};
use sv_core::SelectiveConfig;
use sv_machine::MachineConfig;
use sv_workloads::benchmark;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let name = args.first().cloned().unwrap_or_else(|| "tomcatv".into());
    let m = MachineConfig::paper_default();
    let suite = match benchmark(&name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("explain: {e}");
            std::process::exit(2);
        }
    };
    let r = evaluate_suite_or_exit(&suite, &m, &SelectiveConfig::default(), jobs);
    println!(
        "{:<24} {:>6} {:>14} {:>14} {:>14} {:>14}",
        "loop", "RL", "modulo", "traditional", "full", "selective"
    );
    for l in &r.loops {
        print!("{:<24} {:>6}", l.name, if l.resource_limited { "yes" } else { "no" });
        for (_, key) in EVALUATED {
            let o = &l.outcomes[key];
            print!(" {:>9} {:>4.1}", o.cycles, o.ii_per_orig);
        }
        println!();
    }
    println!();
    for (_, key) in EVALUATED {
        println!("{:<12} speedup {:>6.3}", key, r.speedup(key));
    }
}
