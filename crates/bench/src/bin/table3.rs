//! Regenerates the paper's Table 3: for each benchmark's resource-limited
//! loops, how often selective vectorization's ResMII and final II beat,
//! tie or lose to the best competing technique (modulo scheduling,
//! traditional, or full vectorization).

use sv_bench::{evaluate_suite_or_exit, print_machine, take_jobs_flag, Table3Metric};
use sv_core::SelectiveConfig;
use sv_machine::MachineConfig;
use sv_workloads::all_benchmarks;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let m = MachineConfig::paper_default();
    print_machine(&m);
    println!();
    println!("Table 3: loops where selective vectorization is better/equal/worse");
    println!(
        "{:<14} {:>6} | {:>24} | {:>24}",
        "benchmark", "loops", "ResMII  (B / E / W)", "II  (B / E / W)"
    );
    let cfg = SelectiveConfig::default();
    let mut totals = [0usize; 6];
    for suite in all_benchmarks() {
        let r = evaluate_suite_or_exit(&suite, &m, &cfg, jobs);
        let res = r.table3_counts(Table3Metric::ResMii);
        let ii = r.table3_counts(Table3Metric::Ii);
        let n = r.resource_limited_loops();
        let pct = |x: usize| 100.0 * x as f64 / n.max(1) as f64;
        println!(
            "{:<14} {:>6} | {:>3} ({:>4.1}%) {:>3} ({:>4.1}%) {:>2} | {:>3} ({:>4.1}%) {:>3} ({:>4.1}%) {:>2}",
            suite.name,
            n,
            res.better,
            pct(res.better),
            res.equal,
            pct(res.equal),
            res.worse,
            ii.better,
            pct(ii.better),
            ii.equal,
            pct(ii.equal),
            ii.worse,
        );
        totals[0] += res.better;
        totals[1] += res.equal;
        totals[2] += res.worse;
        totals[3] += ii.better;
        totals[4] += ii.equal;
        totals[5] += ii.worse;
    }
    println!();
    println!(
        "totals: ResMII {}/{}/{} better/equal/worse; II {}/{}/{}",
        totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
    println!(
        "paper shape: selective wins or ties ResMII on essentially all loops\n(1 worse across all benchmarks); a handful of II losses from the\niterative scheduling heuristic."
    );
}
