//! Regenerates the paper's Figure 1: the dot product on the 3-issue toy
//! machine under all four techniques.
//!
//! Paper numbers: modulo scheduling II = 2.0, traditional vectorization
//! II = 3.0 (2.0 vector loop + 1.0 scalar loop), full vectorization
//! II = 1.5, selective vectorization II = 1.0.

use sv_bench::print_machine;
use sv_core::{compile, Strategy};
use sv_machine::MachineConfig;
use sv_sim::assert_equivalent;
use sv_workloads::figure1_dot_product;

fn main() {
    let m = MachineConfig::figure1();
    let l = figure1_dot_product();
    print_machine(&m);
    println!();
    println!("Figure 1: s += x[i]*y[i], reduction not vectorizable");
    println!("{:<22} {:>8} {:>10}", "technique", "II/iter", "paper");
    let paper = [
        (Strategy::ModuloNoUnroll, 2.0),
        (Strategy::Traditional, 3.0),
        (Strategy::Full, 1.5),
        (Strategy::Selective, 1.0),
    ];
    for (s, expected) in paper {
        let c = compile(&l, &m, s).expect("schedulable");
        assert_equivalent(&l, &c);
        let ii = c.ii_per_original_iteration();
        println!("{:<22} {:>8.2} {:>10.2}", s.to_string(), ii, expected);
        assert!(
            (ii - expected).abs() < 1e-9,
            "figure 1 mismatch for {s}: got {ii}, paper says {expected}"
        );
    }
    println!();
    println!("all four IIs match the paper exactly; transformed loops verified");
    println!("functionally equivalent to the source loop.");
}
