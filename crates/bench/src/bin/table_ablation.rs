//! Extension ablation (paper §3.2): the sum-of-squared-bin-weights
//! tie-break inside the bin packer keeps bins balanced so the incremental
//! release/reserve cost probes stay accurate. This table compares the
//! partitioner with and without it, plus a 1-pass iteration cap.

use sv_bench::{evaluate_suite_or_exit, print_machine, take_jobs_flag};
use sv_core::SelectiveConfig;
use sv_machine::MachineConfig;
use sv_workloads::all_benchmarks;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let m = MachineConfig::paper_default();
    print_machine(&m);
    println!();
    println!("Ablation: selective speedup under partitioner variants");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "benchmark", "default", "no-squares", "1-pass"
    );
    let default = SelectiveConfig::default();
    let no_squares = SelectiveConfig { squares_tiebreak: false, ..Default::default() };
    let one_pass = SelectiveConfig { max_iterations: Some(1), ..Default::default() };
    let mut sums = [0.0f64; 3];
    for suite in all_benchmarks() {
        let d = evaluate_suite_or_exit(&suite, &m, &default, jobs).speedup("selective");
        let n = evaluate_suite_or_exit(&suite, &m, &no_squares, jobs).speedup("selective");
        let o = evaluate_suite_or_exit(&suite, &m, &one_pass, jobs).speedup("selective");
        println!("{:<14} {:>10.3} {:>12.3} {:>10.3}", suite.name, d, n, o);
        sums[0] += d;
        sums[1] += n;
        sums[2] += o;
    }
    println!();
    println!(
        "means: default {:.3}, no-squares {:.3}, 1-pass {:.3}",
        sums[0] / 9.0,
        sums[1] / 9.0,
        sums[2] / 9.0
    );
    println!(
        "the paper observes that convergence takes only a few iterations and\nthat balanced bins are what make incremental cost probes accurate."
    );
}
