//! Executed-schedule report (extension): replay compiled plans on the
//! cycle-accurate VLIW executor and prove the measured steady-state
//! cycles/iteration equals the scheduled II — the claim every table's
//! timing model rests on. Sweeps the machine registry (builtins plus
//! every spec file in `examples/machines/`, or `--machines DIR`) across
//! a slice of each benchmark suite under all evaluated techniques.
//!
//! ```text
//! table_executed [--jobs N] [--machines DIR]
//! ```
//!
//! Any gate violation — executed state diverging from the reference
//! engine, a measured II above schedule, an interlock stall — prints as
//! a `VIOLATION:` line; the output bytes are pinned by the
//! `table_executed.txt` golden snapshot.

use std::path::PathBuf;
use std::process::ExitCode;
use sv_bench::{table_executed_text, take_jobs_flag};
use sv_machine::MachineRegistry;

/// The sweep specs committed next to the workspace.
fn default_machines_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines")
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let mut dir = default_machines_dir();
    if let Some(i) = args.iter().position(|a| a == "--machines") {
        if i + 1 >= args.len() {
            eprintln!("table_executed: --machines needs a value");
            return ExitCode::from(2);
        }
        dir = PathBuf::from(&args[i + 1]);
        args.drain(i..=i + 1);
    }
    if !args.is_empty() {
        eprintln!("table_executed: unknown arguments {args:?}");
        eprintln!("usage: table_executed [--jobs N] [--machines DIR]");
        return ExitCode::from(2);
    }
    let mut registry = MachineRegistry::builtin();
    if let Err(e) = registry.load_dir(&dir) {
        eprintln!("table_executed: cannot load machines: {e}");
        return ExitCode::FAILURE;
    }
    let text = table_executed_text(&registry, jobs);
    print!("{text}");
    if text.contains("VIOLATION:") {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
