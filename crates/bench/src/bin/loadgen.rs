//! Closed-loop load generator for the `sv-serve` compilation service.
//!
//! Builds a distinct request set — every loop of every benchmark suite
//! plus seeded broad synthetic loops — and drives the service core
//! ([`ServeService`], the same cache-fronted path `svd` serves) in four
//! phases:
//!
//! * **cold** — each distinct request once (every one a cache miss);
//! * **warm** — `--requests` seeded samples over the same set (cache
//!   hits), asserting every warm body is byte-identical to its cold one;
//! * **warm_mt** — `--connections` concurrent closed-loop clients
//!   (≥ 4 for the committed gate) hammering the same warm set in
//!   parallel, reporting *aggregate* throughput and merged latency
//!   percentiles — the multi-tenant serving number;
//! * **overload** — several closed-loop client threads drive the
//!   supervised batcher through [`RetryClient`]s while the admission
//!   queue is deliberately undersized and seeded queue stalls slow the
//!   drainer: `overloaded` rejections are real, the server-hinted
//!   retry/backoff path is exercised for every run, and every response
//!   that does land must still be byte-identical to its cold bytes.
//!
//! Reports throughput, latency percentiles, cache hit rate and retry
//! counters per phase, and writes the benchmark trajectory file
//! `BENCH_serve.json` (schema `sv-serve-bench/v3`). The v3 file commits
//! an `slo` object — throughput floors and a p99 ceiling derived from
//! the measuring machine with generous head-room — and `--check
//! BASELINE` is the CI gate: the fresh run must show at least
//! `--min-speedup` warm-over-cold throughput, a ≥ 0.99 warm hit rate,
//! overload retries actually exercised, a bounded overload give-up rate,
//! **and must sustain the baseline's committed SLO** (aggregate warm_mt
//! throughput at or above `warm_mt_rps_floor`, warm_mt p99 at or below
//! `warm_mt_p99_us_ceiling`).
//!
//! ```text
//! cargo run --release -p sv-bench --bin loadgen                  # writes BENCH_serve.json
//! cargo run --release -p sv-bench --bin loadgen -- --check BENCH_serve.json
//! cargo run --release -p sv-bench --bin loadgen -- --emit-trace trace.jsonl
//! cargo run --release -p sv-bench --bin loadgen -- --replay trace.jsonl --server 127.0.0.1:7199
//! cargo run --release -p sv-bench --bin loadgen -- --machine-spec m.spec --disk DIR
//! ```
//!
//! `--emit-trace` skips measurement and writes the distinct requests as
//! `svd` wire lines (plus `stats` and `shutdown`) for replay tests.
//! `--replay FILE --server ADDR` sends a trace file line-by-line over
//! TCP (through the retrying client) and prints each response line to
//! stdout — the ci.sh sharding gate replays one trace through a
//! single `svd` and through a 2-shard router and diffs the bytes.
//!
//! Machine selection routes through the registry, like every other
//! layer: `--machine NAME` picks a registered machine (builtins plus
//! `--machines DIR`), `--machine-spec FILE` sends the file's text inline
//! with every request. `--disk DIR` adds a disk cache tier;
//! `--min-cold-hits F` then gates the *cold* phase's hit rate — against
//! a cache warmed by an earlier run of an equal machine, it proves
//! request-key stability end to end (the ci.sh named-vs-inline gate).
//! `--emit-machine-spec PATH` writes the resolved machine's canonical
//! spec for such a second run to mangle and replay.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use sv_core::CacheConfig;
use sv_machine::MachineRegistry;
use sv_serve::proto::ok_response;
use sv_serve::{
    BatchConfig, Batcher, CompileRequest, FaultConfig, FaultPlan, InProcess, RetryClient,
    RetryPolicy, ServeService, TcpTransport,
};
use sv_workloads::{all_benchmarks, synth_loop, SmallRng, SynthProfile};

struct Opts {
    out: String,
    check_baseline: Option<String>,
    emit_trace: Option<String>,
    replay: Option<String>,
    server: Option<String>,
    /// Concurrent warm_mt client threads.
    connections: usize,
    /// Warm-phase request count; 0 = 5× the distinct set.
    requests: usize,
    synth: usize,
    seed: u64,
    min_speedup: f64,
    machine: Option<String>,
    machine_spec: Option<String>,
    machines_dir: Option<String>,
    disk: Option<String>,
    min_cold_hits: Option<f64>,
    emit_machine_spec: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        out: "BENCH_serve.json".into(),
        check_baseline: None,
        emit_trace: None,
        replay: None,
        server: None,
        connections: 4,
        requests: 0,
        synth: 16,
        seed: 1,
        min_speedup: 5.0,
        machine: None,
        machine_spec: None,
        machines_dir: None,
        disk: None,
        min_cold_hits: None,
        emit_machine_spec: None,
    };
    let mut args = std::env::args().skip(1);
    let next = |name: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().ok_or(format!("{name} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => opts.out = next("--out", &mut args)?,
            "--check" => opts.check_baseline = Some(next("--check", &mut args)?),
            "--emit-trace" => opts.emit_trace = Some(next("--emit-trace", &mut args)?),
            "--replay" => opts.replay = Some(next("--replay", &mut args)?),
            "--server" => opts.server = Some(next("--server", &mut args)?),
            "--connections" => {
                let v = next("--connections", &mut args)?;
                let n: usize =
                    v.parse().map_err(|e| format!("bad --connections `{v}`: {e}"))?;
                opts.connections = n.max(1);
            }
            "--machine" => opts.machine = Some(next("--machine", &mut args)?),
            "--machine-spec" => opts.machine_spec = Some(next("--machine-spec", &mut args)?),
            "--machines" => opts.machines_dir = Some(next("--machines", &mut args)?),
            "--disk" => opts.disk = Some(next("--disk", &mut args)?),
            "--emit-machine-spec" => {
                opts.emit_machine_spec = Some(next("--emit-machine-spec", &mut args)?);
            }
            "--min-cold-hits" => {
                let v = next("--min-cold-hits", &mut args)?;
                opts.min_cold_hits =
                    Some(v.parse().map_err(|e| format!("bad --min-cold-hits `{v}`: {e}"))?);
            }
            "--requests" => {
                let v = next("--requests", &mut args)?;
                opts.requests = v.parse().map_err(|e| format!("bad --requests `{v}`: {e}"))?;
            }
            "--synth" => {
                let v = next("--synth", &mut args)?;
                opts.synth = v.parse().map_err(|e| format!("bad --synth `{v}`: {e}"))?;
            }
            "--seed" => {
                let v = next("--seed", &mut args)?;
                opts.seed = v.parse().map_err(|e| format!("bad --seed `{v}`: {e}"))?;
            }
            "--min-speedup" => {
                let v = next("--min-speedup", &mut args)?;
                opts.min_speedup =
                    v.parse().map_err(|e| format!("bad --min-speedup `{v}`: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The distinct request set: every suite loop (hand-written kernels and
/// `.synth` fillers alike — both are real autotuner traffic) plus
/// `synth_n` extra seeded broad synthetic loops, each carrying the
/// run's machine selection (registered name or inline spec text).
fn distinct_requests(synth_n: usize, template: &CompileRequest) -> Vec<CompileRequest> {
    let mut out = Vec::new();
    for suite in all_benchmarks() {
        for l in &suite.loops {
            out.push(CompileRequest { loop_text: l.to_string(), ..template.clone() });
        }
    }
    let profile = SynthProfile::broad();
    for seed in 0..synth_n as u64 {
        let l = synth_loop(&format!("loadgen.synth.{seed}"), &profile, seed);
        out.push(CompileRequest { loop_text: l.to_string(), ..template.clone() });
    }
    out
}

/// One measured phase of `BENCH_serve.json`.
struct Phase {
    name: &'static str,
    reqs: usize,
    rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    hit_rate: f64,
    /// Client retries performed (0 for the direct cold/warm phases).
    retries: u64,
    /// Requests abandoned after the retry budget (0 for direct phases).
    give_ups: u64,
}

/// Percentile by nearest-rank over a sorted sample vector.
fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    assert!(!sorted_us.is_empty());
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Drive `svc` with `plan` (indices into `reqs`), recording latency per
/// request. Returns the phase summary and, when `record` is set, the
/// response bodies by distinct index (the cold pass records; the warm
/// pass checks against them).
fn run_phase(
    name: &'static str,
    svc: &ServeService,
    reqs: &[CompileRequest],
    plan: &[usize],
    expected: Option<&[String]>,
) -> (Phase, Vec<String>) {
    let hits_before = svc.cache().stats().hits();
    let mut bodies: Vec<String> = vec![String::new(); reqs.len()];
    let mut lat_us: Vec<f64> = Vec::with_capacity(plan.len());
    let wall = Instant::now();
    for &idx in plan {
        let t = Instant::now();
        let (body, _) = svc.compile_body(&reqs[idx]).unwrap_or_else(|e| {
            panic!("loadgen: request {idx} failed: {e}");
        });
        lat_us.push(t.elapsed().as_nanos() as f64 / 1e3);
        if let Some(cold) = expected {
            assert_eq!(
                *body, *cold[idx],
                "warm response for request {idx} diverged from its cold bytes"
            );
        } else {
            bodies[idx] = body.to_string();
        }
    }
    let total = wall.elapsed().as_secs_f64();
    let hits = svc.cache().stats().hits() - hits_before;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let phase = Phase {
        name,
        reqs: plan.len(),
        rps: plan.len() as f64 / total.max(1e-9),
        p50_us: percentile(&lat_us, 50.0),
        p95_us: percentile(&lat_us, 95.0),
        p99_us: percentile(&lat_us, 99.0),
        hit_rate: hits as f64 / plan.len() as f64,
        retries: 0,
        give_ups: 0,
    };
    (phase, bodies)
}

/// Per-connection request count of the multi-connection warm phase.
const WARM_MT_PER_CONN: usize = 2_000;

/// The multi-tenant warm phase: `connections` concurrent closed-loop
/// clients over the shared service core (the path every TCP connection's
/// reader thread drives), all traffic cache-warm. Every response is
/// checked byte-identical to its cold bytes *from inside the
/// concurrency*, so the phase doubles as a thread-safety test of the
/// sharded cache; the summary reports aggregate throughput and merged
/// latency percentiles.
fn run_warm_mt(
    svc: &Arc<ServeService>,
    reqs: &[CompileRequest],
    bodies: &[String],
    seed: u64,
    connections: usize,
) -> Phase {
    let hits_before = svc.cache().stats().hits();
    let wall = Instant::now();
    let mut lat_us: Vec<f64> = Vec::with_capacity(connections * WARM_MT_PER_CONN);
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for tid in 0..connections {
            let svc = Arc::clone(svc);
            workers.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (0xa11c_e550 + tid as u64));
                let mut lat = Vec::with_capacity(WARM_MT_PER_CONN);
                for _ in 0..WARM_MT_PER_CONN {
                    let idx = rng.index(reqs.len());
                    let t = Instant::now();
                    let (body, _) = svc.compile_body(&reqs[idx]).unwrap_or_else(|e| {
                        panic!("loadgen: warm_mt connection {tid} request {idx} failed: {e}")
                    });
                    lat.push(t.elapsed().as_nanos() as f64 / 1e3);
                    assert_eq!(
                        *body, *bodies[idx],
                        "warm_mt response for request {idx} diverged under concurrency"
                    );
                }
                lat
            }));
        }
        for w in workers {
            lat_us.extend(w.join().expect("warm_mt connection thread panicked"));
        }
    });
    let total = wall.elapsed().as_secs_f64();
    let n = connections * WARM_MT_PER_CONN;
    let hits = svc.cache().stats().hits() - hits_before;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    Phase {
        name: "warm_mt",
        reqs: n,
        rps: n as f64 / total.max(1e-9),
        p50_us: percentile(&lat_us, 50.0),
        p95_us: percentile(&lat_us, 95.0),
        p99_us: percentile(&lat_us, 99.0),
        hit_rate: hits as f64 / n as f64,
        retries: 0,
        give_ups: 0,
    }
}

/// How hard the overload phase leans on the batcher: the queue is
/// undersized relative to the client threads, so admission rejections
/// (and therefore retries) are guaranteed under the closed loop, and
/// seeded stalls make the drainer a genuine bottleneck.
const OVERLOAD_THREADS: usize = 4;
const OVERLOAD_QUEUE_CAP: usize = 2;
const OVERLOAD_PER_THREAD: usize = 50;

/// The committed-overload phase: `OVERLOAD_THREADS` closed-loop clients,
/// each behind its own seeded [`RetryClient`], against a batcher whose
/// queue holds only `OVERLOAD_QUEUE_CAP` requests and whose drainer is
/// slowed by injected queue stalls. All traffic is warm (the cold phase
/// already populated the cache), so every landed `ok` must match its
/// cold bytes exactly; rejected submissions surface as `overloaded` and
/// are retried with backoff, give-ups are counted, and the daemon must
/// finish alive.
fn run_overload(svc: Arc<ServeService>, reqs: &[CompileRequest], bodies: &[String], seed: u64) -> Phase {
    let plan = Arc::new(FaultPlan::new(
        seed,
        FaultConfig { queue_stall: 0.3, stall_ms: 1, ..FaultConfig::default() },
    ));
    let hits_before = svc.cache().stats().hits();
    let batcher = Arc::new(Batcher::with_faults(
        svc.clone(),
        BatchConfig { queue_cap: OVERLOAD_QUEUE_CAP, ..BatchConfig::default() },
        Some(plan),
    ));
    let wall = Instant::now();
    let mut lat_us: Vec<f64> = Vec::new();
    let (mut landed, mut retries, mut give_ups) = (0usize, 0u64, 0u64);
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for tid in 0..OVERLOAD_THREADS {
            let batcher = Arc::clone(&batcher);
            workers.push(scope.spawn(move || {
                let mut client = RetryClient::new(
                    InProcess::new(batcher),
                    RetryPolicy { seed: seed ^ tid as u64, ..RetryPolicy::default() },
                );
                let mut rng = SmallRng::seed_from_u64(seed + 101 + tid as u64);
                let mut lat = Vec::with_capacity(OVERLOAD_PER_THREAD);
                for k in 0..OVERLOAD_PER_THREAD {
                    let idx = rng.index(reqs.len());
                    let id = (tid * 1_000_000 + k) as u64;
                    let t = Instant::now();
                    match client.call(&reqs[idx].to_wire(id), None) {
                        Ok(line) => {
                            lat.push(t.elapsed().as_nanos() as f64 / 1e3);
                            assert_eq!(
                                line,
                                ok_response(id, &bodies[idx]),
                                "overload response for id {id} diverged from its cold bytes"
                            );
                        }
                        Err(e) => {
                            // Give-ups are the bounded, expected outcome of
                            // committed overload; anything fatal is a bug.
                            assert!(
                                matches!(e, sv_serve::ClientError::GiveUp { .. }),
                                "overload client failed fatally: {e}"
                            );
                        }
                    }
                }
                (lat, client.stats())
            }));
        }
        for w in workers {
            let (lat, stats) = w.join().expect("overload client thread panicked");
            landed += lat.len();
            lat_us.extend(lat);
            retries += stats.retries;
            give_ups += stats.give_ups;
        }
    });
    let total = wall.elapsed().as_secs_f64();
    Arc::try_unwrap(batcher)
        .ok()
        .expect("sole batcher owner after the client threads exit")
        .join()
        .expect("the overloaded daemon must finish alive");
    let hits = svc.cache().stats().hits() - hits_before;
    assert!(!lat_us.is_empty(), "overload phase landed zero responses — every client gave up");
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    Phase {
        name: "overload",
        reqs: OVERLOAD_THREADS * OVERLOAD_PER_THREAD,
        rps: landed as f64 / total.max(1e-9),
        p50_us: percentile(&lat_us, 50.0),
        p95_us: percentile(&lat_us, 95.0),
        p99_us: percentile(&lat_us, 99.0),
        hit_rate: hits as f64 / landed.max(1) as f64,
        retries,
        give_ups,
    }
}

/// The committed serving SLO: floors/ceilings a `--check` run must
/// sustain. When *writing* a baseline they are derived from the fresh
/// measurement with generous head-room (throughput floors at 40% of
/// measured, the p99 ceiling at 8× measured), so the committed file
/// gates against real regressions, not benchmark noise. The paper-scale
/// target for capable multi-core hardware is ≥ 500k warm aggregate
/// req/s; the committed floor is whatever the measuring machine
/// sustains, so the gate is meaningful everywhere.
struct Slo {
    warm_rps_floor: f64,
    warm_mt_rps_floor: f64,
    warm_mt_p99_us_ceiling: f64,
}

impl Slo {
    fn derive(warm: &Phase, warm_mt: &Phase) -> Slo {
        Slo {
            warm_rps_floor: warm.rps * 0.4,
            warm_mt_rps_floor: warm_mt.rps * 0.4,
            warm_mt_p99_us_ceiling: (warm_mt.p99_us * 8.0).max(200.0),
        }
    }
}

/// Render `BENCH_serve.json`: one row per phase, the committed SLO, then
/// a summary.
fn render(
    phases: &[Phase],
    distinct: usize,
    speedup: f64,
    warm_hit_rate: f64,
    connections: usize,
    slo: &Slo,
) -> String {
    let mut s = String::from("{\"schema\":\"sv-serve-bench/v3\",\"rows\":[\n");
    for (i, p) in phases.iter().enumerate() {
        let sep = if i + 1 == phases.len() { "" } else { "," };
        s.push_str(&format!(
            "{{\"phase\":\"{}\",\"reqs\":{},\"rps\":{:.1},\"p50_us\":{:.1},\
             \"p95_us\":{:.1},\"p99_us\":{:.1},\"hit_rate\":{:.4},\
             \"retries\":{},\"give_ups\":{}}}{sep}\n",
            p.name, p.reqs, p.rps, p.p50_us, p.p95_us, p.p99_us, p.hit_rate,
            p.retries, p.give_ups
        ));
    }
    let overload = phases.iter().find(|p| p.name == "overload");
    let (o_retries, o_give_up_rate) = overload
        .map(|p| (p.retries, p.give_ups as f64 / p.reqs.max(1) as f64))
        .unwrap_or((0, 0.0));
    s.push_str(&format!(
        "],\"slo\":{{\"connections\":{connections},\"warm_rps_floor\":{:.1},\
         \"warm_mt_rps_floor\":{:.1},\"warm_mt_p99_us_ceiling\":{:.1}}},\n",
        slo.warm_rps_floor, slo.warm_mt_rps_floor, slo.warm_mt_p99_us_ceiling
    ));
    s.push_str(&format!(
        "\"summary\":{{\"distinct\":{distinct},\"warm_over_cold_speedup\":{speedup:.2},\
         \"warm_hit_rate\":{warm_hit_rate:.4},\"overload_retries\":{o_retries},\
         \"overload_give_up_rate\":{o_give_up_rate:.4}}}}}\n"
    ));
    s
}

/// Pull a numeric field out of a `sv-serve-bench/v3` file by key (last
/// occurrence, so summary keys win over per-row keys of the same name).
fn summary_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.rfind(&pat)? + pat.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Replay a trace file over TCP through the retrying client, printing
/// each response line to stdout (the sharding-gate workhorse: the same
/// trace through one `svd` and through a router must print identical
/// compile-response bytes).
fn run_replay(path: &str, server: &str, seed: u64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen: cannot read trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = RetryClient::new(
        TcpTransport::new(server),
        RetryPolicy { seed, ..RetryPolicy::default() },
    );
    let mut n = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match client.call(line, None) {
            Ok(resp) => {
                println!("{resp}");
                n += 1;
            }
            Err(e) => {
                eprintln!("loadgen: replay line {} failed: {e}", n + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    let stats = client.stats();
    eprintln!(
        "loadgen: replayed {n} lines against {server} ({} retries, {} hinted)",
        stats.retries, stats.hinted
    );
    ExitCode::SUCCESS
}

fn emit_trace(path: &str, reqs: &[CompileRequest]) -> std::io::Result<()> {
    let mut out = String::new();
    for (i, r) in reqs.iter().enumerate() {
        out.push_str(&r.to_wire(i as u64));
        out.push('\n');
    }
    out.push_str(&format!("{{\"verb\":\"stats\",\"id\":{}}}\n", 1_000_000));
    out.push_str(&format!("{{\"verb\":\"shutdown\",\"id\":{}}}\n", 1_000_001));
    std::fs::write(path, out)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            eprintln!(
                "usage: loadgen [--out PATH] [--check BASELINE] [--emit-trace PATH] \
                 [--replay FILE --server ADDR] [--connections M] \
                 [--requests N] [--synth K] [--seed S] [--min-speedup F] \
                 [--machine NAME] [--machine-spec FILE] [--machines DIR] \
                 [--disk DIR] [--min-cold-hits F] [--emit-machine-spec PATH]"
            );
            return ExitCode::from(2);
        }
    };

    if let Some(trace) = &opts.replay {
        let Some(server) = &opts.server else {
            eprintln!("loadgen: --replay needs --server ADDR");
            return ExitCode::from(2);
        };
        return run_replay(trace, server, opts.seed);
    }

    if opts.machine.is_some() && opts.machine_spec.is_some() {
        eprintln!("loadgen: --machine and --machine-spec are mutually exclusive");
        return ExitCode::from(2);
    }
    let mut registry = MachineRegistry::builtin();
    if let Some(dir) = &opts.machines_dir {
        if let Err(e) = registry.load_dir(std::path::Path::new(dir)) {
            eprintln!("loadgen: cannot load machines: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Resolve the run's machine up front: requests carry the name or the
    // inline spec text, and the resolved config backs --emit-machine-spec.
    let mut template = CompileRequest::default();
    let resolved = match &opts.machine_spec {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("loadgen: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            template.machine_spec = Some(text);
            match template.machine_config(&registry) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("loadgen: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            if let Some(name) = &opts.machine {
                template.machine = name.clone();
            }
            match template.machine_config(&registry) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("loadgen: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    if let Some(path) = &opts.emit_machine_spec {
        if let Err(e) = std::fs::write(path, resolved.to_spec()) {
            eprintln!("loadgen: cannot write machine spec {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("loadgen: wrote canonical spec of `{}` to {path}", resolved.name);
    }

    let reqs = distinct_requests(opts.synth, &template);
    if let Some(path) = &opts.emit_trace {
        return match emit_trace(path, &reqs) {
            Ok(()) => {
                println!("loadgen: wrote {} request lines to {path}", reqs.len() + 2);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("loadgen: cannot write trace {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Read the baseline before measuring so a bad path fails fast.
    let baseline = match &opts.check_baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) if text.contains("\"schema\":\"sv-serve-bench/v3\"") => Some(text),
            Ok(_) => {
                eprintln!("loadgen: baseline {path} is not a sv-serve-bench/v3 file");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("loadgen: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let cache_cfg = CacheConfig {
        disk_dir: opts.disk.as_ref().map(PathBuf::from),
        ..CacheConfig::default()
    };
    let svc = match ServeService::with_registry(cache_cfg, registry) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("loadgen: cannot open cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cold_plan: Vec<usize> = (0..reqs.len()).collect();
    let (cold, bodies) = run_phase("cold", &svc, &reqs, &cold_plan, None);
    if let Some(floor) = opts.min_cold_hits {
        if cold.hit_rate < floor {
            eprintln!(
                "loadgen: REGRESSION: cold-phase hit rate {:.4} below the {floor:.2} \
                 floor — request keys did not survive the machine re-encoding",
                cold.hit_rate
            );
            return ExitCode::FAILURE;
        }
        println!(
            "loadgen: cold-phase hit rate {:.4} ≥ {floor:.2} (key-stability gate)",
            cold.hit_rate
        );
    }

    let warm_n = if opts.requests == 0 { reqs.len() * 5 } else { opts.requests };
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let warm_plan: Vec<usize> = (0..warm_n).map(|_| rng.index(reqs.len())).collect();
    let (warm, _) = run_phase("warm", &svc, &reqs, &warm_plan, Some(&bodies));
    let warm_mt = run_warm_mt(&svc, &reqs, &bodies, opts.seed, opts.connections);
    let overload = run_overload(Arc::clone(&svc), &reqs, &bodies, opts.seed);

    let speedup = warm.rps / cold.rps;
    let warm_hit_rate = warm.hit_rate;
    let give_up_rate = overload.give_ups as f64 / overload.reqs.max(1) as f64;
    let overload_retries = overload.retries;
    println!(
        "loadgen: {} distinct; cold {:.1} req/s (p95 {:.0} µs), warm {:.1} req/s \
         (p95 {:.1} µs, hit rate {:.2}%) → {speedup:.1}x",
        reqs.len(),
        cold.rps,
        cold.p95_us,
        warm.rps,
        warm.p95_us,
        warm_hit_rate * 100.0
    );
    println!(
        "loadgen: warm_mt {} reqs over {} connections: {:.1} req/s aggregate \
         (p50 {:.1} µs, p99 {:.1} µs)",
        warm_mt.reqs, opts.connections, warm_mt.rps, warm_mt.p50_us, warm_mt.p99_us
    );
    println!(
        "loadgen: overload {} reqs over {OVERLOAD_THREADS} clients (queue cap \
         {OVERLOAD_QUEUE_CAP}): {:.1} req/s, p95 {:.1} µs, {overload_retries} retries, \
         {} give-ups ({:.1}%)",
        overload.reqs,
        overload.rps,
        overload.p95_us,
        overload.give_ups,
        give_up_rate * 100.0
    );
    let fresh = Slo::derive(&warm, &warm_mt);
    let (warm_rps, warm_mt_rps, warm_mt_p99) = (warm.rps, warm_mt.rps, warm_mt.p99_us);
    let text = render(
        &[cold, warm, warm_mt, overload],
        reqs.len(),
        speedup,
        warm_hit_rate,
        opts.connections,
        &fresh,
    );
    if let Err(e) = std::fs::write(&opts.out, &text) {
        eprintln!("loadgen: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }

    if let Some(baseline) = baseline {
        if let Some(base_speedup) = summary_field(&baseline, "warm_over_cold_speedup") {
            println!(
                "loadgen: baseline speedup {base_speedup:.1}x, fresh {speedup:.1}x \
                 (informational; gate is the absolute floor)"
            );
        }
        if speedup < opts.min_speedup {
            eprintln!(
                "loadgen: REGRESSION: warm/cold speedup {speedup:.2}x below the \
                 {:.1}x floor — the cache is not paying for itself",
                opts.min_speedup
            );
            return ExitCode::FAILURE;
        }
        if warm_hit_rate < 0.99 {
            eprintln!(
                "loadgen: REGRESSION: warm hit rate {:.4} below 0.99 — repeated \
                 requests are missing the cache",
                warm_hit_rate
            );
            return ExitCode::FAILURE;
        }
        if overload_retries == 0 {
            eprintln!(
                "loadgen: REGRESSION: the overload phase performed zero retries — \
                 the committed-overload setup no longer exercises the retry path"
            );
            return ExitCode::FAILURE;
        }
        if give_up_rate > 0.5 {
            eprintln!(
                "loadgen: REGRESSION: overload give-up rate {give_up_rate:.4} above \
                 0.50 — backoff is no longer absorbing transient rejections"
            );
            return ExitCode::FAILURE;
        }
        // The committed SLO: the fresh run must sustain the baseline
        // file's floors/ceiling (they were written with head-room, so a
        // miss is a real serving regression, not noise).
        let floor = summary_field(&baseline, "warm_rps_floor").unwrap_or(0.0);
        if warm_rps < floor {
            eprintln!(
                "loadgen: REGRESSION: warm throughput {warm_rps:.1} req/s below the \
                 committed {floor:.1} req/s SLO floor"
            );
            return ExitCode::FAILURE;
        }
        let floor = summary_field(&baseline, "warm_mt_rps_floor").unwrap_or(0.0);
        if warm_mt_rps < floor {
            eprintln!(
                "loadgen: REGRESSION: warm_mt aggregate throughput {warm_mt_rps:.1} \
                 req/s below the committed {floor:.1} req/s SLO floor"
            );
            return ExitCode::FAILURE;
        }
        let ceiling =
            summary_field(&baseline, "warm_mt_p99_us_ceiling").unwrap_or(f64::INFINITY);
        if warm_mt_p99 > ceiling {
            eprintln!(
                "loadgen: REGRESSION: warm_mt p99 {warm_mt_p99:.1} µs above the \
                 committed {ceiling:.1} µs SLO ceiling"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "loadgen: gate passed (≥ {:.1}x, hit rate ≥ 0.99, retries > 0, give-up \
             rate ≤ 0.50, SLO: warm ≥ {:.0} rps, warm_mt ≥ {:.0} rps, p99 ≤ {:.0} µs)",
            opts.min_speedup,
            summary_field(&baseline, "warm_rps_floor").unwrap_or(0.0),
            summary_field(&baseline, "warm_mt_rps_floor").unwrap_or(0.0),
            ceiling
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn render_exposes_summary_fields() {
        let phases = vec![
            Phase {
                name: "cold",
                reqs: 10,
                rps: 100.0,
                p50_us: 900.0,
                p95_us: 2000.0,
                p99_us: 3000.0,
                hit_rate: 0.0,
                retries: 0,
                give_ups: 0,
            },
            Phase {
                name: "warm",
                reqs: 50,
                rps: 5000.0,
                p50_us: 9.0,
                p95_us: 20.0,
                p99_us: 30.0,
                hit_rate: 1.0,
                retries: 0,
                give_ups: 0,
            },
            Phase {
                name: "warm_mt",
                reqs: 8000,
                rps: 16000.0,
                p50_us: 11.0,
                p95_us: 25.0,
                p99_us: 40.0,
                hit_rate: 1.0,
                retries: 0,
                give_ups: 0,
            },
            Phase {
                name: "overload",
                reqs: 200,
                rps: 800.0,
                p50_us: 50.0,
                p95_us: 400.0,
                p99_us: 900.0,
                hit_rate: 1.0,
                retries: 37,
                give_ups: 2,
            },
        ];
        let slo = Slo::derive(&phases[1], &phases[2]);
        let text = render(&phases, 10, 50.0, 1.0, 4, &slo);
        assert!(text.contains("\"schema\":\"sv-serve-bench/v3\""));
        assert_eq!(summary_field(&text, "warm_over_cold_speedup"), Some(50.0));
        assert_eq!(summary_field(&text, "warm_hit_rate"), Some(1.0));
        assert_eq!(summary_field(&text, "overload_retries"), Some(37.0));
        assert_eq!(summary_field(&text, "overload_give_up_rate"), Some(0.01));
        assert_eq!(summary_field(&text, "warm_rps_floor"), Some(2000.0));
        assert_eq!(summary_field(&text, "warm_mt_rps_floor"), Some(6400.0));
        assert_eq!(summary_field(&text, "warm_mt_p99_us_ceiling"), Some(320.0));
        assert_eq!(summary_field(&text, "connections"), Some(4.0));
        assert!(text.contains("\"phase\":\"cold\""));
        assert!(text.contains("\"phase\":\"warm_mt\""));
        assert!(text.contains("\"retries\":37,\"give_ups\":2"));
    }

    #[test]
    fn trace_lines_parse_back() {
        let reqs = distinct_requests(2, &CompileRequest::default());
        assert!(reqs.len() > 2);
        for (i, r) in reqs.iter().enumerate().take(3) {
            let line = r.to_wire(i as u64);
            let parsed = sv_serve::parse_request(&line).expect("trace line parses");
            assert_eq!(parsed.id(), i as u64);
        }
    }

    #[test]
    fn template_machine_selection_propagates() {
        let template = CompileRequest {
            machine_spec: Some("vector_length = 4\n".into()),
            ..CompileRequest::default()
        };
        let reqs = distinct_requests(1, &template);
        assert!(reqs.iter().all(|r| r.machine_spec.as_deref() == Some("vector_length = 4\n")));
    }
}
