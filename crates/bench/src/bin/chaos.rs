//! `chaos` — seeded fault-injection soak for the serving stack.
//!
//! For every seed in `--seeds A..B`, builds a disk-backed serving stack
//! (cache + service + supervised batcher) with the full
//! [`FaultConfig::soak`] mix armed — injected disk I/O errors, torn
//! writes, orphaned temporaries, compile panics, slow compiles, drainer
//! deaths, queue stalls, connection drops, greedy client bursts — pushes
//! cold and warm request waves, a retrying-client wave, and a
//! multi-client burst wave (several registered fair-share identities
//! submitting concurrently, with injected bursts) through it, and
//! asserts the invariants the chaos-hardening work guarantees:
//!
//! * **exactly-once** — every submitted request gets exactly one
//!   response, none lost, none duplicated, in-order per sink — including
//!   across concurrently submitting clients whose items interleave in
//!   the round-robin drain and in post-crash requeues;
//! * **byte-identity** — every `ok` response is byte-identical to the
//!   fault-free control run's bytes (faults may fail a request with a
//!   typed error, but may never change what a success looks like);
//! * **liveness** — the daemon finishes alive: `join()` returns `Ok`,
//!   the supervisor never hit its fruitless-restart bound;
//! * **recovery** — a faultless reopen over the same disk directory
//!   quarantines every torn write and orphaned temporary at open, and
//!   then serves only byte-exact entries;
//! * **coverage** — across the soak, every fault class actually fired
//!   (otherwise the run proved nothing about that class).
//!
//! Any violation panics with the offending seed, so a failure replays
//! with `--seeds S..S+1`.
//!
//! ```text
//! cargo run --release -p sv-bench --bin chaos -- --seeds 0..200
//! cargo run --release -p sv-bench --bin chaos -- --seeds 17..18 --distinct 8
//! ```

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use sv_core::{CacheConfig, CompileCache};
use sv_serve::proto::ok_response;
use sv_serve::{
    BatchConfig, Batcher, CompileRequest, FaultConfig, FaultCounters, FaultPlan, InProcess,
    Request, RetryClient, RetryPolicy, ServeService, Sink,
};
use sv_workloads::all_benchmarks;

struct Opts {
    seeds: std::ops::Range<u64>,
    distinct: usize,
    jobs: usize,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts { seeds: 0..25, distinct: 10, jobs: 2 };
    let mut args = std::env::args().skip(1);
    let next = |name: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().ok_or(format!("{name} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                let v = next("--seeds", &mut args)?;
                let (a, b) =
                    v.split_once("..").ok_or(format!("--seeds wants A..B, got `{v}`"))?;
                let lo: u64 = a.parse().map_err(|e| format!("bad --seeds `{v}`: {e}"))?;
                let hi: u64 = b.parse().map_err(|e| format!("bad --seeds `{v}`: {e}"))?;
                if lo >= hi {
                    return Err(format!("--seeds wants a non-empty range, got `{v}`"));
                }
                opts.seeds = lo..hi;
            }
            "--distinct" => {
                let v = next("--distinct", &mut args)?;
                opts.distinct = v.parse().map_err(|e| format!("bad --distinct `{v}`: {e}"))?;
            }
            "--jobs" => {
                let v = next("--jobs", &mut args)?;
                opts.jobs = v.parse().map_err(|e| format!("bad --jobs `{v}`: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The distinct request set: the first `n` suite loops (the same corpus
/// `loadgen` drives, truncated so one seed stays fast).
fn requests(n: usize) -> Vec<CompileRequest> {
    let mut out = Vec::new();
    for suite in all_benchmarks() {
        for l in &suite.loops {
            if out.len() == n {
                return out;
            }
            out.push(CompileRequest { loop_text: l.to_string(), ..CompileRequest::default() });
        }
    }
    out
}

/// One capture sink per request: a buffer the drainer writes the
/// response line(s) into, inspected after join.
fn capture() -> (Sink, Arc<Mutex<Vec<u8>>>) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    (buf.clone() as Sink, buf)
}

/// The per-sink response lines (exactly one, if exactly-once holds).
fn lines_of(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
    String::from_utf8_lossy(&buf.lock().unwrap())
        .lines()
        .map(str::to_string)
        .collect()
}

/// Check one captured response against the control body: exactly one
/// line, correct id, and — when `ok` — byte-identical to the fault-free
/// rendering. Returns whether it was an `ok`.
fn check_response(seed: u64, id: u64, buf: &Arc<Mutex<Vec<u8>>>, control: &str) -> bool {
    let lines = lines_of(buf);
    assert_eq!(
        lines.len(),
        1,
        "seed {seed}: request {id} got {} responses (exactly-once violated): {lines:?}",
        lines.len()
    );
    let line = &lines[0];
    assert!(
        line.starts_with(&format!("{{\"id\":{id},")),
        "seed {seed}: response id mismatch for request {id}: {line}"
    );
    if line.contains("\"ok\":true") {
        assert_eq!(
            line,
            &ok_response(id, control),
            "seed {seed}: ok bytes for request {id} diverged from the fault-free control"
        );
        true
    } else {
        assert!(
            line.contains("\"kind\":\"internal\""),
            "seed {seed}: request {id} failed with an unexpected kind (only injected \
             compile panics may fail requests here): {line}"
        );
        false
    }
}

struct SeedOutcome {
    injected: FaultCounters,
    ok: u64,
    internal: u64,
    client_ok: u64,
    client_give_ups: u64,
    client_retries: u64,
    burst_admitted: u64,
    burst_rejected: u64,
}

/// How many concurrent fair-share identities the burst wave registers.
const BURST_CLIENTS: u64 = 3;

/// Run one fully-faulted seed and check every invariant.
fn run_seed(seed: u64, reqs: &[CompileRequest], control: &[String], jobs: usize) -> SeedOutcome {
    let dir = std::env::temp_dir().join(format!("sv-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = Arc::new(FaultPlan::new(seed, FaultConfig::soak()));
    let cache_cfg = CacheConfig {
        disk_dir: Some(dir.clone()),
        faults: Some(plan.clone()),
        ..CacheConfig::default()
    };
    let mut svc = ServeService::new(cache_cfg).expect("open faulted cache");
    svc.set_faults(Arc::clone(&plan));
    let batcher = Arc::new(Batcher::with_faults(
        Arc::new(svc),
        BatchConfig { jobs, ..BatchConfig::default() },
        Some(Arc::clone(&plan)),
    ));

    let n = reqs.len() as u64;
    // Cold + warm direct waves: ids 0..n and n..2n, one capture sink
    // per request so exactly-once is checkable per request.
    let mut sinks = Vec::new();
    for wave in 0..2u64 {
        for (i, r) in reqs.iter().enumerate() {
            let id = wave * n + i as u64;
            let (sink, buf) = capture();
            batcher
                .submit(Request::Compile { id, req: Box::new(r.clone()) }, sink)
                .unwrap_or_else(|e| panic!("seed {seed}: admission rejected id {id}: {e}"));
            sinks.push((id, i, buf));
        }
    }

    // Client wave: the retrying client over an in-process transport with
    // injected connection drops — ids 2n.., retried transparently.
    let mut client = RetryClient::new(
        InProcess::with_faults(Arc::clone(&batcher), Arc::clone(&plan)),
        RetryPolicy { seed, ..RetryPolicy::default() },
    );
    let mut client_ok = 0u64;
    for (i, r) in reqs.iter().enumerate() {
        let id = 2 * n + i as u64;
        match client.call(&r.to_wire(id), None) {
            Ok(line) => {
                if line.contains("\"ok\":true") {
                    assert_eq!(
                        line,
                        ok_response(id, &control[i]),
                        "seed {seed}: client ok bytes for id {id} diverged from control"
                    );
                    client_ok += 1;
                } else {
                    assert!(
                        line.contains("\"kind\":\"internal\""),
                        "seed {seed}: client id {id} unexpected error: {line}"
                    );
                }
            }
            Err(e) => panic!(
                "seed {seed}: client id {id} exhausted {} retries: {e}",
                RetryPolicy::default().max_retries
            ),
        }
    }
    let client_stats = client.stats();
    drop(client);

    // Burst wave: several registered fair-share identities submitting
    // concurrently, with the plan occasionally turning one submission
    // into a greedy back-to-back burst. Quota rejections are legal (and
    // must be the typed overloaded error); every *admitted* submission
    // is held to the same exactly-once + byte-identity bar as the
    // direct waves. Ids 3n.. are partitioned per thread so a duplicate
    // or cross-wiring is unmistakable.
    let mut burst_admitted = 0u64;
    let mut burst_rejected = 0u64;
    let threads: Vec<_> = (0..BURST_CLIENTS)
        .map(|t| {
            let b = Arc::clone(&batcher);
            let plan = Arc::clone(&plan);
            let reqs = reqs.to_vec();
            std::thread::spawn(move || {
                let cid = b.register_client(1);
                let mut admitted = Vec::new();
                let mut rejected = 0u64;
                let mut seq = 0u64;
                for (i, r) in reqs.iter().enumerate() {
                    let copies = plan.client_burst().max(1);
                    for _ in 0..copies {
                        let id = 3 * n + t * 100_000 + seq;
                        seq += 1;
                        let (sink, buf) = capture();
                        match b.submit_for(
                            cid,
                            Request::Compile { id, req: Box::new(r.clone()) },
                            sink,
                        ) {
                            Ok(()) => admitted.push((id, i, buf)),
                            Err(sv_serve::ServeError::Overloaded { .. }) => rejected += 1,
                            Err(e) => panic!(
                                "seed {seed}: burst client {t} id {id} rejected with an \
                                 untyped error: {e}"
                            ),
                        }
                    }
                }
                b.deregister_client(cid);
                (admitted, rejected)
            })
        })
        .collect();
    for th in threads {
        let (admitted, rejected) = th.join().expect("burst client thread");
        burst_admitted += admitted.len() as u64;
        burst_rejected += rejected;
        sinks.extend(admitted);
    }

    // Liveness: the daemon must finish alive — a typed Err here means
    // the supervisor hit its fruitless-restart bound, which the soak mix
    // must never cause.
    Arc::try_unwrap(batcher)
        .ok()
        .expect("sole batcher owner")
        .join()
        .unwrap_or_else(|e| panic!("seed {seed}: daemon died: {e}"));

    // Exactly-once + byte-identity for the direct waves.
    let mut ok = 0u64;
    let mut internal = 0u64;
    for (id, i, buf) in &sinks {
        if check_response(seed, *id, buf, &control[*i]) {
            ok += 1;
        } else {
            internal += 1;
        }
    }

    // Crash-safe recovery: a faultless reopen sweeps the directory —
    // every torn write and orphaned temporary is moved aside — and then
    // serves only byte-exact entries.
    let clean = CompileCache::new(CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() })
        .expect("faultless reopen");
    let report = clean.recovery();
    let injected = plan.injected();
    assert!(
        report.orphans <= injected.orphan_tmps,
        "seed {seed}: recovery found more orphans ({}) than were injected ({})",
        report.orphans,
        injected.orphan_tmps
    );
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("seed {seed}: {e}")) {
        let path = entry.unwrap().path();
        let name = path.to_string_lossy().to_string();
        assert!(
            !name.contains(".svc.tmp") || name.ends_with(".quarantined"),
            "seed {seed}: live tmp file survived recovery: {name}"
        );
    }
    drop(clean);
    let svc = ServeService::new(CacheConfig {
        disk_dir: Some(dir.clone()),
        ..CacheConfig::default()
    })
    .expect("faultless service");
    for (i, r) in reqs.iter().enumerate() {
        let (body, _) = svc
            .compile_body(r)
            .unwrap_or_else(|e| panic!("seed {seed}: post-recovery compile failed: {e}"));
        assert_eq!(
            body.as_ref(),
            control[i],
            "seed {seed}: post-recovery bytes for request {i} diverged (a torn write \
             survived the sweep)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    SeedOutcome {
        injected,
        ok,
        internal,
        client_ok,
        client_give_ups: client_stats.give_ups,
        client_retries: client_stats.retries,
        burst_admitted,
        burst_rejected,
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos: {e}");
            eprintln!("usage: chaos [--seeds A..B] [--distinct N] [--jobs N]");
            return ExitCode::from(2);
        }
    };
    // Injected panics are expected traffic here: silence their default
    // backtrace spam, but keep real (un-injected) panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<&str>().map(|s| s.to_string()).or_else(|| {
            info.payload().downcast_ref::<String>().cloned()
        });
        if !msg.as_deref().is_some_and(|m| m.contains("injected")) {
            default_hook(info);
        }
    }));

    let reqs = requests(opts.distinct);
    // The fault-free control: canonical bodies, independent of any seed.
    let control_svc = ServeService::in_memory();
    let control: Vec<String> = reqs
        .iter()
        .map(|r| control_svc.compile_body(r).expect("control compile").0.to_string())
        .collect();

    let mut total = FaultCounters::default();
    let (mut ok, mut internal, mut client_ok, mut give_ups, mut retries) = (0, 0, 0, 0, 0);
    let (mut burst_admitted, mut burst_rejected) = (0u64, 0u64);
    let seeds = opts.seeds.clone();
    for seed in seeds {
        let o = run_seed(seed, &reqs, &control, opts.jobs);
        total.disk_reads += o.injected.disk_reads;
        total.disk_writes += o.injected.disk_writes;
        total.torn_writes += o.injected.torn_writes;
        total.orphan_tmps += o.injected.orphan_tmps;
        total.compile_panics += o.injected.compile_panics;
        total.slow_compiles += o.injected.slow_compiles;
        total.drainer_panics += o.injected.drainer_panics;
        total.queue_stalls += o.injected.queue_stalls;
        total.conn_drops += o.injected.conn_drops;
        total.client_bursts += o.injected.client_bursts;
        ok += o.ok;
        internal += o.internal;
        client_ok += o.client_ok;
        give_ups += o.client_give_ups;
        retries += o.client_retries;
        burst_admitted += o.burst_admitted;
        burst_rejected += o.burst_rejected;
    }
    let n_seeds = opts.seeds.end - opts.seeds.start;
    println!(
        "chaos: {n_seeds} seeds × {} requests: {ok} ok + {internal} typed-internal direct \
         responses (exactly-once held), {client_ok} client oks ({retries} retries, \
         {give_ups} give-ups), {burst_admitted} concurrent-client admissions \
         ({burst_rejected} typed quota rejections), {} faults injected",
        reqs.len() * 2,
        total.total()
    );
    println!(
        "chaos: injected per class: disk_reads={} disk_writes={} torn={} orphans={} \
         compile_panics={} slow={} drainer_panics={} stalls={} conn_drops={} bursts={}",
        total.disk_reads,
        total.disk_writes,
        total.torn_writes,
        total.orphan_tmps,
        total.compile_panics,
        total.slow_compiles,
        total.drainer_panics,
        total.queue_stalls,
        total.conn_drops,
        total.client_bursts
    );
    // Coverage: a class that never fired proved nothing. Require a
    // reasonably sized soak before enforcing (a 1-seed repro run is for
    // debugging one seed, not coverage).
    if n_seeds >= 20 {
        assert!(total.disk_reads > 0, "soak never injected a disk read fault");
        assert!(total.disk_writes > 0, "soak never injected a disk write error");
        assert!(total.torn_writes > 0, "soak never injected a torn write");
        assert!(total.orphan_tmps > 0, "soak never injected an orphaned tmp");
        assert!(total.compile_panics > 0, "soak never injected a compile panic");
        assert!(total.slow_compiles > 0, "soak never injected a slow compile");
        assert!(total.drainer_panics > 0, "soak never injected a drainer panic");
        assert!(total.queue_stalls > 0, "soak never injected a queue stall");
        assert!(total.conn_drops > 0, "soak never injected a connection drop");
        assert!(total.client_bursts > 0, "soak never injected a client burst");
    }
    println!("chaos: all invariants held (exactly-once, byte-identity, liveness, recovery)");
    ExitCode::SUCCESS
}
