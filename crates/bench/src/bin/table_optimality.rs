//! Optimality report (extension): certify the paper's Kernighan–Lin
//! partitioning heuristic against the exact branch-and-bound oracle.
//! Every suite loop on the selected registry machines is compiled both
//! ways; the oracle either proves the heuristic's II minimal or delivers
//! a strictly better proved-optimal schedule, and every proved schedule
//! is replayed on the cycle-accurate executor to confirm the certificate
//! holds in execution, not just on paper.
//!
//! ```text
//! table_optimality [--jobs N] [--machines DIR] [NAME...]
//! ```
//!
//! `NAME...` selects registry machines (default: `paper vl4`, the two
//! configurations the CI optimality gate sweeps). The gap list at the
//! bottom is the committed gap table; the output bytes are pinned by the
//! `table_optimality.txt` golden snapshot.

use std::path::PathBuf;
use std::process::ExitCode;
use sv_bench::{table_optimality_text, take_jobs_flag};
use sv_machine::MachineRegistry;

/// The sweep specs committed next to the workspace.
fn default_machines_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines")
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let mut dir = default_machines_dir();
    if let Some(i) = args.iter().position(|a| a == "--machines") {
        if i + 1 >= args.len() {
            eprintln!("table_optimality: --machines needs a value");
            return ExitCode::from(2);
        }
        dir = PathBuf::from(&args[i + 1]);
        args.drain(i..=i + 1);
    }
    let mut registry = MachineRegistry::builtin();
    if let Err(e) = registry.load_dir(&dir) {
        eprintln!("table_optimality: cannot load machines: {e}");
        return ExitCode::FAILURE;
    }
    let names: Vec<&str> = if args.is_empty() {
        vec!["paper", "vl4"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for n in &names {
        if registry.get(n).is_none() {
            eprintln!("table_optimality: machine `{n}` not in the registry");
            return ExitCode::from(2);
        }
    }
    let text = table_optimality_text(&registry, &names, jobs);
    print!("{text}");
    if text.contains("VIOLATION:") {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
