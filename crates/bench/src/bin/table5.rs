//! Regenerates the paper's Table 5: selective vectorization's speedup when
//! vector memory operations are assumed misaligned (merge-lowered) vs
//! compile-time aligned (merge-free) — the best case for static alignment
//! analysis.

use sv_bench::{evaluate_suite_or_exit, print_machine, take_jobs_flag};
use sv_core::SelectiveConfig;
use sv_machine::{AlignmentPolicy, MachineConfig};
use sv_workloads::all_benchmarks;

const PAPER: [(&str, f64, f64); 9] = [
    ("093.nasa7", 1.04, 1.07),
    ("101.tomcatv", 1.38, 1.48),
    ("103.su2cor", 1.15, 1.16),
    ("104.hydro2d", 1.03, 1.05),
    ("125.turb3d", 0.95, 0.95),
    ("146.wave5", 1.03, 1.04),
    ("171.swim", 1.17, 1.21),
    ("172.mgrid", 1.26, 1.26),
    ("301.apsi", 1.02, 1.02),
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let misaligned = MachineConfig::paper_default();
    let mut aligned = MachineConfig::paper_default();
    aligned.alignment = AlignmentPolicy::AssumeAligned;
    print_machine(&misaligned);
    println!();
    println!("Table 5: selective speedup, misaligned vs aligned vector memory");
    println!("{:<14} {:>20} {:>20}", "benchmark", "misaligned", "aligned");
    let cfg = SelectiveConfig::default();
    for suite in all_benchmarks() {
        let rm = evaluate_suite_or_exit(&suite, &misaligned, &cfg, jobs).speedup("selective");
        let ra = evaluate_suite_or_exit(&suite, &aligned, &cfg, jobs).speedup("selective");
        let paper = PAPER.iter().find(|p| p.0 == suite.name).expect("known suite");
        println!(
            "{:<14} {:>11.2} ({:>4.2}) {:>13.2} ({:>4.2})",
            suite.name, rm, paper.1, ra, paper.2
        );
    }
    println!();
    println!(
        "paper shape: alignment knowledge helps modestly — pipelining already\nhides most realignment latency; the gain is reduced merge-unit contention."
    );
}
