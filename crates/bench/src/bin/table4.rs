//! Regenerates the paper's Table 4: selective vectorization's speedup when
//! scalar↔vector communication cost is *considered* by the partitioner vs
//! *ignored* (the transfers are still inserted before scheduling either
//! way — only the cost analysis changes).

use sv_bench::{evaluate_suite_or_exit, print_machine, take_jobs_flag};
use sv_core::SelectiveConfig;
use sv_machine::MachineConfig;
use sv_workloads::all_benchmarks;

const PAPER: [(&str, f64, f64); 9] = [
    ("093.nasa7", 1.04, 0.78),
    ("101.tomcatv", 1.38, 1.22),
    ("103.su2cor", 1.15, 1.02),
    ("104.hydro2d", 1.03, 0.98),
    ("125.turb3d", 0.95, 0.81),
    ("146.wave5", 1.03, 0.99),
    ("171.swim", 1.17, 1.08),
    ("172.mgrid", 1.26, 1.14),
    ("301.apsi", 1.02, 0.97),
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let m = MachineConfig::paper_default();
    print_machine(&m);
    println!();
    println!("Table 4: selective speedup, communication considered vs ignored");
    println!("{:<14} {:>20} {:>20}", "benchmark", "considered", "ignored");
    let considered = SelectiveConfig::default();
    let ignored = SelectiveConfig { account_communication: false, ..Default::default() };
    let mut degraded = 0;
    for suite in all_benchmarks() {
        let rc = evaluate_suite_or_exit(&suite, &m, &considered, jobs).speedup("selective");
        let ri = evaluate_suite_or_exit(&suite, &m, &ignored, jobs).speedup("selective");
        let paper = PAPER.iter().find(|p| p.0 == suite.name).expect("known suite");
        println!(
            "{:<14} {:>11.2} ({:>4.2}) {:>13.2} ({:>4.2})",
            suite.name, rc, paper.1, ri, paper.2
        );
        if ri < rc {
            degraded += 1;
        }
    }
    println!();
    println!(
        "{degraded}/9 benchmarks degrade when communication is ignored — the paper's\nconclusion: a viable solution must track communication costs carefully."
    );
}
