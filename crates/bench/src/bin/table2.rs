//! Regenerates the paper's Table 2: whole-benchmark speedup of
//! traditional, full and selective vectorization over the unrolled
//! modulo-scheduling baseline, on the Table 1 machine.
//!
//! `--jobs N` shards the compilations over N workers; the output is
//! byte-identical for every worker count.

use sv_bench::{table2_text, take_jobs_flag};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    if let Some(a) = args.first() {
        eprintln!("table2: unknown argument `{a}` (only --jobs N is accepted)");
        std::process::exit(2);
    }
    print!("{}", table2_text(jobs));
}
