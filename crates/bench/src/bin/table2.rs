//! Regenerates the paper's Table 2: whole-benchmark speedup of
//! traditional, full and selective vectorization over the unrolled
//! modulo-scheduling baseline, on the Table 1 machine.

use sv_bench::{evaluate_suite_or_exit, print_machine};
use sv_core::SelectiveConfig;
use sv_machine::MachineConfig;
use sv_workloads::all_benchmarks;

/// The paper's measured speedups, printed alongside ours for comparison.
const PAPER: [(&str, f64, f64, f64); 9] = [
    ("093.nasa7", 0.18, 0.76, 1.04),
    ("101.tomcatv", 0.71, 0.99, 1.38),
    ("103.su2cor", 0.63, 0.94, 1.15),
    ("104.hydro2d", 0.94, 1.00, 1.03),
    ("125.turb3d", 0.38, 0.93, 0.95),
    ("146.wave5", 0.76, 0.96, 1.03),
    ("171.swim", 1.01, 1.00, 1.17),
    ("172.mgrid", 0.53, 0.99, 1.26),
    ("301.apsi", 0.51, 0.97, 1.02),
];

fn main() {
    let m = MachineConfig::paper_default();
    print_machine(&m);
    println!();
    println!("Table 2: speedup vs modulo scheduling (paper values in parentheses)");
    println!(
        "{:<14} {:>18} {:>18} {:>18}",
        "benchmark", "traditional", "full", "selective"
    );
    let cfg = SelectiveConfig::default();
    let mut sel_product = 1.0f64;
    let mut sel_max: f64 = 0.0;
    let suites = all_benchmarks();
    for suite in &suites {
        let r = evaluate_suite_or_exit(suite, &m, &cfg);
        let (t, f, s) = (
            r.speedup("traditional"),
            r.speedup("full"),
            r.speedup("selective"),
        );
        let paper = PAPER.iter().find(|p| p.0 == suite.name).expect("known suite");
        println!(
            "{:<14} {:>9.2} ({:>5.2}) {:>10.2} ({:>4.2}) {:>10.2} ({:>4.2})",
            suite.name, t, paper.1, f, paper.2, s, paper.3
        );
        sel_product *= s;
        sel_max = sel_max.max(s);
    }
    let geo = sel_product.powf(1.0 / suites.len() as f64);
    println!();
    println!(
        "selective: geometric-mean speedup {geo:.2} (paper arithmetic mean 1.11), max {sel_max:.2} (paper 1.38)"
    );
}
