//! Architectural sweep (extension): the paper states its approach "offers
//! significant performance gains on the various architectural
//! configurations we simulated" without listing them; this binary sweeps
//! plausible neighbours of Table 1 and reports the whole-suite selective
//! speedup on each, plus where full vectorization lands.

use sv_bench::{evaluate_suite_or_exit, take_jobs_flag};
use sv_core::SelectiveConfig;
use sv_machine::{AlignmentPolicy, CommModel, MachineConfig};
use sv_workloads::all_benchmarks;

fn geo_mean(xs: &[f64]) -> f64 {
    xs.iter().product::<f64>().powf(1.0 / xs.len() as f64)
}

fn sweep(name: &str, m: &MachineConfig, jobs: usize) {
    let cfg = SelectiveConfig::default();
    let mut full = Vec::new();
    let mut sel = Vec::new();
    for suite in all_benchmarks() {
        let r = evaluate_suite_or_exit(&suite, m, &cfg, jobs);
        full.push(r.speedup("full"));
        sel.push(r.speedup("selective"));
    }
    println!(
        "{name:<44} {:>7.2}x {:>10.2}x",
        geo_mean(&full),
        geo_mean(&sel)
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    println!("Whole-suite geometric-mean speedup vs modulo scheduling");
    println!("{:<44} {:>8} {:>11}", "machine", "full", "selective");

    let base = MachineConfig::paper_default();
    sweep("paper Table 1", &base, jobs);

    let mut m = base.clone();
    m.vector_units = 2;
    m.merge_units = 2;
    sweep("2 vector + 2 merge units", &m, jobs);

    let mut m = base.clone();
    m.mem_units = 4;
    sweep("4 load/store units", &m, jobs);

    let mut m = base.clone();
    m.issue_width = 8;
    m.int_units = 6;
    m.fp_units = 4;
    sweep("8-issue, 4 FP units", &m, jobs);

    let mut m = base.clone();
    m.comm = CommModel::Free;
    sweep("free scalar<->vector communication", &m, jobs);

    let mut m = base.clone();
    m.alignment = AlignmentPolicy::AssumeAligned;
    sweep("all vector memory aligned", &m, jobs);

    let mut m = base.clone();
    m.vector_length = 4;
    sweep("vector length 4 (256-bit)", &m, jobs);

    println!(
        "\nselective vectorization stays ahead of full vectorization on every\n\
         configuration where scalar and vector throughput are comparable; the\n\
         gap narrows as vector resources grow (longer vectors, more units),\n\
         matching the paper's §4 discussion of when the technique applies."
    );
}
