//! Architectural sweep (extension): the paper states its approach "offers
//! significant performance gains on the various architectural
//! configurations we simulated" without listing them; this binary sweeps
//! the machine registry — the builtins plus every spec file in
//! `examples/machines/` (or `--machines DIR`) — and reports the
//! whole-suite selective speedup on each, plus where full vectorization
//! lands.
//!
//! ```text
//! table_arch [--jobs N] [--machines DIR]
//! ```
//!
//! Adding a `.spec` file to the directory adds a row; the sweep set and
//! the output bytes are pinned by the `table_arch.txt` golden snapshot.

use std::path::PathBuf;
use std::process::ExitCode;
use sv_bench::{table_arch_text, take_jobs_flag};
use sv_machine::MachineRegistry;

/// The sweep specs committed next to the workspace.
fn default_machines_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/machines")
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = take_jobs_flag(&mut args);
    let mut dir = default_machines_dir();
    if let Some(i) = args.iter().position(|a| a == "--machines") {
        if i + 1 >= args.len() {
            eprintln!("table_arch: --machines needs a value");
            return ExitCode::from(2);
        }
        dir = PathBuf::from(&args[i + 1]);
        args.drain(i..=i + 1);
    }
    if !args.is_empty() {
        eprintln!("table_arch: unknown arguments {args:?}");
        eprintln!("usage: table_arch [--jobs N] [--machines DIR]");
        return ExitCode::from(2);
    }
    let mut registry = MachineRegistry::builtin();
    if let Err(e) = registry.load_dir(&dir) {
        eprintln!("table_arch: cannot load machines: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", table_arch_text(&registry, jobs));
    println!(
        "\nselective vectorization stays ahead of full vectorization on every\n\
         configuration where scalar and vector throughput are comparable; the\n\
         gap narrows as vector resources grow (longer vectors, more units),\n\
         matching the paper's §4 discussion of when the technique applies."
    );
    ExitCode::SUCCESS
}
