//! `svc` — the selective-vectorization compiler driver.
//!
//! Compiles a loop written in the textual IR format (what `Loop`'s
//! `Display` prints and `sv_ir::parse_loop` reads) under any strategy and
//! reports the schedule, optionally dumping the flat prologue / kernel /
//! epilogue listing and functionally executing the result.
//!
//! ```text
//! svc LOOP.svl|LOOP.sl [--machines DIR] [--machine NAME] [--machine-file SPEC]
//!              [--strategy selective|full|...]
//!              [--vl N] [--aligned] [--free-comm] [--emit] [--run] [--executed]
//! svc --workload tomcatv.residual [...same options]
//! svc --server HOST:PORT [--retries N] [...same selection options]
//! ```
//!
//! `--machine` resolves against the machine registry: the builtin
//! `paper`/`figure1` presets plus every spec file loaded by a preceding
//! `--machines DIR`. `--machine-file` compiles against one spec file
//! without registering it.
//!
//! `--run` executes the compiled plan functionally and checks it against
//! the source loop; `--executed` replays it through the cycle-accurate
//! VLIW executor ([`sv_sim::compile_executed`]) and prints each piece's
//! measured steady-state cycles/iteration next to its scheduled II — a
//! mismatch (or any interlock stall) fails the compile like any other
//! pass error.
//!
//! With no `--strategy`, all techniques are compared side by side. The
//! `--workload` form compiles a named loop from the built-in SPEC-FP
//! substitute suites (`BENCH.LOOP`, e.g. `swim.calc1`).
//!
//! `--server HOST:PORT` compiles remotely against a running `svd`
//! instead of in-process: the resolved machine travels as an inline
//! canonical spec (so the server needs no matching registry entry), and
//! the request goes through the retrying client — `overloaded`
//! rejections and dropped connections are retried with capped
//! exponential backoff (`--retries` bounds them) before giving up with a
//! typed error.

use std::process::ExitCode;
use sv_core::{compile, compile_checked, CompiledLoop, DriverConfig, Strategy};
use sv_ir::{parse_loop, Loop};
use sv_machine::{AlignmentPolicy, CommModel, MachineConfig, MachineRegistry};
use sv_modsched::emit_flat;
use sv_serve::{CompileRequest, RetryClient, RetryPolicy, TcpTransport};
use sv_sim::{assert_equivalent, compile_executed, run_compiled, ExecutedPiece};

struct Options {
    path: String,
    workload: Option<String>,
    machine: MachineConfig,
    strategy: Option<Strategy>,
    emit: bool,
    run: bool,
    executed: bool,
    stats: bool,
    server: Option<String>,
    retries: u32,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: svc LOOP.svl [--machines DIR] [--machine NAME] [--machine-file SPEC]\n\
         \x20          [--strategy NAME] [--vl N] [--aligned] [--free-comm]\n\
         \x20          [--emit] [--run] [--executed] [--stats]\n\
         \x20     svc --workload BENCH.LOOP [...same options]\n\
         \x20     svc --server HOST:PORT [--retries N] [...same selection options]\n\
         strategies: modulo-no-unroll, modulo, traditional, full, selective, widened,\n\
         \x20 optimal\n\
         --machine resolves against the registry (builtins paper, figure1, plus\n\
         \x20 any --machines DIR given before it)\n\
         --stats prints per-pass timings/counters and one JSON line per compilation\n\
         --executed replays the plan on the cycle-accurate executor and proves\n\
         \x20 measured steady-state II == scheduled II (state checked bit-exactly)\n\
         --server compiles remotely over the retrying wire client (inline machine spec)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut workload = None;
    let mut registry = MachineRegistry::builtin();
    let mut machine = MachineConfig::paper_default();
    let mut strategy = None;
    let mut emit = false;
    let mut run = false;
    let mut executed = false;
    let mut stats = false;
    let mut server = None;
    let mut retries = 4u32;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--machines" => {
                let dir = args.next().ok_or_else(usage)?;
                registry.load_dir(std::path::Path::new(&dir)).map_err(|e| {
                    eprintln!("svc: cannot load machines: {e}");
                    ExitCode::FAILURE
                })?;
            }
            "--machine" => {
                let name = args.next().ok_or_else(usage)?;
                machine = registry.get(&name).cloned().ok_or_else(|| {
                    eprintln!(
                        "svc: unknown machine `{name}` (registry has: {})",
                        registry.names().join(", ")
                    );
                    ExitCode::FAILURE
                })?;
            }
            "--strategy" => {
                strategy = Some(match args.next().as_deref() {
                    Some("modulo-no-unroll") => Strategy::ModuloNoUnroll,
                    Some("modulo") => Strategy::ModuloOnly,
                    Some("traditional") => Strategy::Traditional,
                    Some("full") => Strategy::Full,
                    Some("selective") => Strategy::Selective,
                    Some("widened") => Strategy::Widened,
                    Some("optimal") => Strategy::Optimal,
                    _ => return Err(usage()),
                })
            }
            "--vl" => {
                machine.vector_length = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 2)
                    .ok_or_else(usage)?
            }
            "--workload" => workload = Some(args.next().ok_or_else(usage)?),
            "--machine-file" => {
                let p = args.next().ok_or_else(usage)?;
                let text = std::fs::read_to_string(&p).map_err(|e| {
                    eprintln!("svc: cannot read {p}: {e}");
                    ExitCode::FAILURE
                })?;
                machine = MachineConfig::from_spec(&text).map_err(|e| {
                    eprintln!("svc: {p}: {e}");
                    ExitCode::FAILURE
                })?;
            }
            "--server" => server = Some(args.next().ok_or_else(usage)?),
            "--retries" => {
                retries = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--aligned" => machine.alignment = AlignmentPolicy::AssumeAligned,
            "--free-comm" => machine.comm = CommModel::Free,
            "--emit" => emit = true,
            "--run" => run = true,
            "--executed" => executed = true,
            "--stats" => stats = true,
            "--help" | "-h" => return Err(usage()),
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string())
            }
            _ => return Err(usage()),
        }
    }
    if path.is_none() && workload.is_none() {
        return Err(usage());
    }
    Ok(Options {
        path: path.unwrap_or_default(),
        workload,
        machine,
        strategy,
        emit,
        run,
        executed,
        stats,
        server,
        retries,
    })
}

/// Remote mode: one wire request per strategy through the retrying
/// client. The resolved machine travels inline as its canonical spec, so
/// the daemon compiles against exactly what `svc` resolved locally.
fn compile_remote(
    addr: &str,
    retries: u32,
    looop: &Loop,
    machine: &MachineConfig,
    strategies: &[Strategy],
) -> ExitCode {
    let policy = RetryPolicy { max_retries: retries, ..RetryPolicy::default() };
    let mut client = RetryClient::new(TcpTransport::new(addr), policy);
    let mut failed = false;
    for (i, &s) in strategies.iter().enumerate() {
        let req = CompileRequest {
            loop_text: looop.to_string(),
            machine_spec: Some(machine.to_spec()),
            strategy: s,
            ..CompileRequest::default()
        };
        match client.call(&req.to_wire(i as u64 + 1), None) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("svc: {s}: {e}");
                failed = true;
            }
        }
    }
    let st = client.stats();
    if st.retries > 0 || st.give_ups > 0 {
        eprintln!(
            "svc: client retried {} time(s), gave up {} time(s)",
            st.retries, st.give_ups
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Print each piece's executed cycle accounting next to its schedule.
fn report_executed(pieces: &[ExecutedPiece]) {
    for p in pieces {
        let measured = p
            .report
            .measured_ii()
            .map_or_else(|| "   -".into(), |ii| format!("{ii:>4.1}"));
        println!(
            "  executed {:<24} measured II {measured}  scheduled II {:>3}  \
             ({} iterations, {} cycles, {} stalls)",
            p.piece, p.scheduled_ii, p.iterations, p.report.total_cycles, p.report.stall_cycles
        );
    }
    println!("  executed check: state matches the reference engine at the scheduled II");
}

fn report(l: &Loop, m: &MachineConfig, c: &CompiledLoop, emit: bool, run: bool) {
    println!(
        "{:<20} II/iter {:>6.2}  cycles {:>10}",
        c.strategy.to_string(),
        c.ii_per_original_iteration(),
        c.total_cycles(m)
    );
    for seg in &c.segments {
        let regs = seg
            .registers
            .as_ref()
            .map(|r| format!("{}/{}/{}/{}", r.used[0], r.used[1], r.used[2], r.used[3]))
            .unwrap_or_else(|| "spill!".into());
        println!(
            "  segment {:<24} II {:>3} (ResMII {:>3}, RecMII {:>3})  stages {:>2}  MVE {:>2}  regs {regs}",
            seg.looop.name,
            seg.schedule.ii,
            seg.schedule.resmii,
            seg.schedule.recmii,
            seg.schedule.stage_count,
            seg.schedule.mve_factor
        );
        if emit {
            print!("{}", emit_flat(&seg.looop, &seg.schedule));
        }
    }
    if run {
        assert_equivalent(l, c);
        let r = run_compiled(c);
        for (name, v) in &r.live_outs {
            println!("  liveout {name} = {:?}", v.as_f64());
        }
        println!("  functional check: matches the source loop");
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let looop = if let Some(spec) = &opts.workload {
        let (bench, loop_name) = spec.split_once('.').unwrap_or((spec.as_str(), ""));
        let suite = match sv_workloads::benchmark(bench) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("svc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(l) = suite
            .loops
            .iter()
            .find(|l| l.name.ends_with(loop_name) || l.name == *spec)
        else {
            eprintln!("svc: no loop matching `{spec}` in {}; available:", suite.name);
            for l in &suite.loops {
                eprintln!("  {}", l.name);
            }
            return ExitCode::FAILURE;
        };
        l.clone()
    } else {
        let text = match std::fs::read_to_string(&opts.path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("svc: cannot read {}: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        };
        // Two accepted syntaxes: the low-level IR text (header contains
        // "(trip ...)") and the expression frontend.
        let low_level = text
            .lines()
            .find(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .is_some_and(|l| l.contains("(trip"));
        let parsed = if low_level {
            parse_loop(&text)
        } else {
            sv_ir::loop_from_source(&text)
        };
        match parsed {
            Ok(l) => l,
            Err(e) => {
                eprintln!("svc: {}: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };
    let strategies: Vec<Strategy> = match opts.strategy {
        Some(s) => vec![s],
        None => Strategy::ALL.to_vec(),
    };
    if let Some(addr) = &opts.server {
        return compile_remote(addr, opts.retries, &looop, &opts.machine, &strategies);
    }
    println!("{looop}");
    for s in strategies {
        if opts.stats {
            // The hardened driver records PassStats; print them under the
            // schedule summary plus the machine-readable JSON line.
            let dcfg = DriverConfig::for_strategy(s);
            match compile_checked(&looop, &opts.machine, &dcfg) {
                Ok((c, rep)) => {
                    report(&looop, &opts.machine, &c, opts.emit, opts.run);
                    if !rep.clean() {
                        println!("  degraded to {} ({} fallbacks)", rep.delivered, rep.fallbacks.len());
                    }
                    for line in rep.stats.to_string().lines() {
                        println!("  {line}");
                    }
                    println!("{}", rep.stats_json_line(&looop.name, &opts.machine.name));
                }
                Err(e) => {
                    eprintln!("svc: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if opts.executed {
            // The executed gate rides the hardened driver: compile, then
            // replay on the cycle-accurate executor and fail like any
            // other pass error if the schedule misses its own II.
            let dcfg = DriverConfig::for_strategy(s);
            match compile_executed(&looop, &opts.machine, &dcfg) {
                Ok((c, _rep, pieces)) => {
                    report(&looop, &opts.machine, &c, opts.emit, opts.run);
                    report_executed(&pieces);
                }
                Err(e) => {
                    eprintln!("svc: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match compile(&looop, &opts.machine, s) {
                Ok(c) => report(&looop, &opts.machine, &c, opts.emit, opts.run),
                Err(e) => {
                    eprintln!("svc: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
