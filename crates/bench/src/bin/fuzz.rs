//! Deterministic differential fuzzer for the compilation pipeline.
//!
//! Drives the seeded synthetic-loop generator across several distribution
//! profiles, compiles every loop under **all** strategies through the
//! hardened [`compile_checked`] driver, and functionally executes both the
//! source loop and the compiled plan, reporting any divergence. Failures
//! are shrunk to a minimal textual repro (greedy op removal + trip-count
//! reduction, re-validated through `parse_loop` round-trips) before being
//! printed.
//!
//! ```text
//! cargo run --release -p sv-bench --bin fuzz -- --seeds 0..500
//! cargo run --release -p sv-bench --bin fuzz -- --seeds 0..200 --fail-fast
//! cargo run --release -p sv-bench --bin fuzz -- --seeds 0..500 --jobs 8
//! cargo run --release -p sv-bench --bin fuzz -- --seeds 0..100 --oracle-selfcheck
//! cargo run --release -p sv-bench --bin fuzz -- --seeds 0..100 --executed-selfcheck
//! cargo run --release -p sv-bench --bin fuzz -- --seeds 0..100 --optimal-selfcheck
//! ```
//!
//! `--oracle-selfcheck` additionally executes every compiled case on both
//! the pre-decoded fast engine and the retained reference interpreters
//! (`sv_sim::reference`) and fails on any bit-level disagreement between
//! them, shrinking the diverging loop like any other failure.
//!
//! `--executed-selfcheck` replays every compiled plan through the
//! cycle-accurate VLIW executor ([`sv_sim::executed_selfcheck`]) and
//! fails when the executed state diverges from the reference engine or
//! when any piece's measured steady-state cycles/iteration misses its
//! scheduled II — the schedule itself is what gets fuzzed.
//!
//! `--optimal-selfcheck` cross-checks the optimal-II oracle on every
//! selective case: the exact search ([`sv_core::optimal_search`]) must
//! close its proof within the default budget, never prove an II above
//! the heuristic's, agree with what the `optimal`-strategy driver
//! delivers, and the delivered plan must sustain the proved II on the
//! cycle-accurate executor. Divergences shrink like any other failure.
//!
//! Everything is pure function of the seed range: a reported seed
//! reproduces exactly, on any machine. `--jobs N` shards the seeds over N
//! worker threads in 100-seed blocks, merging results back in seed order,
//! so the output (failures, progress lines, summary) is byte-identical to
//! the serial run for any worker count.

use std::process::ExitCode;
use sv_core::parallel::{default_jobs, parse_jobs, run_ordered};
use sv_core::{compile_checked, DriverConfig, Strategy};
use sv_ir::{parse_loop, Loop, OpId, Operand};
use sv_machine::{MachineConfig, MachineRegistry};
use sv_sim::{check_equivalent, has_register_state_across_cleanup, oracle_selfcheck};
use sv_workloads::{synth_loop, SynthProfile};

/// One divergence or compile failure, before shrinking.
struct Failure {
    seed: u64,
    profile: &'static str,
    machine: String,
    strategy: Strategy,
    what: String,
}

/// The generator profiles the fuzzer sweeps — each stresses a different
/// part of the pipeline.
fn profiles() -> Vec<(&'static str, SynthProfile)> {
    let broad = SynthProfile::broad();
    vec![
        ("broad", broad.clone()),
        (
            // Reduction-heavy with reassociation licensed: vector partial
            // sums and horizontal combines.
            "reduce",
            SynthProfile { reduction_prob: 0.85, reassoc: true, ..broad.clone() },
        ),
        (
            // Sequential chains and carried uses: recurrences pin ops
            // scalar and stress partition communication.
            "sequential",
            SynthProfile {
                recurrence_prob: 0.6,
                carried_prob: 0.35,
                nonunit_prob: 0.3,
                ..broad.clone()
            },
        ),
        (
            // Small loops with tiny trips: cleanup-loop and remainder
            // handling.
            "tiny",
            SynthProfile { loads: (1, 2), arith: (1, 3), trip: (1, 9), ..broad.clone() },
        ),
        (
            // If-converted control flow: dense cmp+select chains, some
            // with carried (latched) else-arms, mixed with reductions —
            // the predicated path through every layer.
            "predicated",
            SynthProfile {
                cmp_select_prob: 0.4,
                arith: (3, 12),
                carried_prob: 0.15,
                reduction_prob: 0.4,
                ..broad
            },
        ),
    ]
}

/// The machine sweep: the builtin registry plus any `--machines DIR`
/// spec files, flattened to (registered name, machine) pairs in sorted
/// name order — the same resolution path every other layer uses.
fn machines(extra_dir: Option<&str>) -> Result<Vec<(String, MachineConfig)>, String> {
    let mut registry = MachineRegistry::builtin();
    if let Some(dir) = extra_dir {
        registry
            .load_dir(std::path::Path::new(dir))
            .map_err(|e| format!("cannot load machines: {e}"))?;
    }
    Ok(registry.iter().map(|(n, m, _)| (n.to_string(), m.clone())).collect())
}

/// Clamp a generated loop the same way the property tests do: one
/// invocation, and a remainder-free trip when carried register state
/// cannot cross the main→cleanup boundary.
fn fuzz_loop(name: &str, profile: &SynthProfile, seed: u64) -> Loop {
    let mut l = synth_loop(name, profile, seed);
    l.invocations = 1;
    if has_register_state_across_cleanup(&l) {
        l.trip.count = (l.trip.count & !3).max(4);
    }
    l
}

/// Which optional self-checks a fuzz case runs on top of the
/// source-vs-compiled differential execution.
#[derive(Clone, Copy, Default)]
struct Checks {
    /// Fast engine vs retained reference interpreters.
    oracle: bool,
    /// Cycle-accurate executor: state vs reference + measured II gate.
    executed: bool,
    /// Optimal-II oracle vs heuristic vs driver vs executed II.
    optimal: bool,
}

/// Compile + differentially execute one (loop, machine, strategy) case.
/// `checks.oracle` additionally runs the fast execution engine against
/// the retained reference interpreters ([`oracle_selfcheck`]);
/// `checks.executed` replays the plan through the cycle-accurate
/// executor and holds it to the state + measured-II gates
/// ([`sv_sim::executed_selfcheck`]). Returns a description of the
/// failure, if any.
fn run_case(l: &Loop, m: &MachineConfig, strategy: Strategy, checks: Checks) -> Option<String> {
    let cfg = DriverConfig::for_strategy(strategy);
    match compile_checked(l, m, &cfg) {
        Err(e) => Some(format!("compile error: {e}")),
        Ok((compiled, report)) => {
            let mut prefix = String::new();
            if !report.clean() {
                prefix = format!("(degraded to {}) ", report.delivered);
            }
            if let Err(e) = check_equivalent(l, &compiled) {
                return Some(format!("{prefix}divergence: {e}"));
            }
            if checks.oracle {
                if let Err(e) = oracle_selfcheck(l, &compiled) {
                    return Some(format!("{prefix}engine self-check divergence: {e}"));
                }
            }
            if checks.executed {
                if let Err(e) = sv_sim::executed_selfcheck(&compiled, m) {
                    return Some(format!("{prefix}executed self-check failure: {e}"));
                }
            }
            if checks.optimal && strategy == Strategy::Selective && report.clean() {
                if let Err(e) = optimal_selfcheck(l, m, &compiled) {
                    return Some(format!("{prefix}optimal self-check failure: {e}"));
                }
            }
            None
        }
    }
}

/// Cross-check the optimal-II oracle against the heuristic result it was
/// seeded with: the proof must close, never land above the heuristic,
/// agree with the `optimal`-strategy driver's delivery, and the
/// delivered plan must sustain the proved II on the cycle-accurate
/// executor.
fn optimal_selfcheck(
    l: &Loop,
    m: &MachineConfig,
    selective: &sv_core::CompiledLoop,
) -> Result<(), String> {
    use sv_analysis::OptimalOutcome;
    use sv_core::{optimal_search, OptimalConfig};
    let seed =
        selective.partition.as_ref().ok_or("selective delivery lost its partition")?;
    let heur_ii = selective.segments[0].schedule.ii;
    let report = optimal_search(l, m, &seed.partition, heur_ii, &OptimalConfig::default());
    let proved = match report.outcome {
        OptimalOutcome::BudgetExhausted { best_found } => {
            return Err(format!(
                "oracle budget exhausted on a fuzz-sized loop ({} nodes, {} probe \
                 units, best witnessed II {best_found})",
                report.stats.nodes, report.probe_spent
            ));
        }
        OptimalOutcome::Proved(ii) => ii,
    };
    if proved > heur_ii {
        return Err(format!("oracle proved II {proved} above the heuristic's {heur_ii}"));
    }
    if let Some(w) = &report.witness {
        if w.schedule.ii != proved {
            return Err(format!(
                "witness schedule II {} disagrees with the proved minimum {proved}",
                w.schedule.ii
            ));
        }
    }
    let (delivered, dreport) =
        compile_checked(l, m, &DriverConfig::for_strategy(Strategy::Optimal))
            .map_err(|e| format!("optimal strategy failed to compile: {e}"))?;
    if !dreport.clean() {
        return Err(format!(
            "driver lost the proof the direct search closed: {:?}",
            dreport.fallbacks
        ));
    }
    let driver_ii = delivered.segments[0].schedule.ii;
    if driver_ii != proved {
        return Err(format!(
            "driver delivered II {driver_ii}, direct search proved {proved}"
        ));
    }
    let pieces = sv_sim::executed_selfcheck(&delivered, m)
        .map_err(|e| format!("proved schedule failed the executed gate: {e}"))?;
    let main = &pieces[0];
    if main.report.kernel_executions > 0
        && main.report.measured_ii() != Some(f64::from(proved))
    {
        return Err(format!(
            "executed steady-state II {:?} misses the proved II {proved}",
            main.report.measured_ii()
        ));
    }
    Ok(())
}

/// Remove op `i` from the loop if nothing references it, renumbering every
/// later op. Returns `None` when the op is referenced or removal breaks
/// verification.
fn remove_op(l: &Loop, i: usize) -> Option<Loop> {
    let victim = OpId(i as u32);
    let referenced = l
        .ops
        .iter()
        .enumerate()
        .any(|(j, op)| {
            j != i
                && op.operands.iter().any(|o| matches!(o, Operand::Def { op, .. } if *op == victim))
        })
        || l.live_outs.iter().any(|lo| lo.op == victim);
    if referenced {
        return None;
    }
    let remap = |id: OpId| -> OpId {
        if id.index() > i {
            OpId(id.0 - 1)
        } else {
            id
        }
    };
    let mut out = l.clone();
    out.ops.remove(i);
    for (j, op) in out.ops.iter_mut().enumerate() {
        op.id = OpId(j as u32);
        for o in op.operands.iter_mut() {
            if let Operand::Def { op: p, .. } = o {
                *p = remap(*p);
            }
        }
    }
    for lo in out.live_outs.iter_mut() {
        lo.op = remap(lo.op);
    }
    out.verify().ok()?;
    Some(out)
}

/// Greedily shrink a failing loop: drop unreferenced ops, then reduce the
/// trip count, keeping every step that still fails the same
/// (machine, strategy) case. Each accepted step is round-tripped through
/// the textual format so the printed repro is guaranteed to reproduce.
fn shrink(l: &Loop, m: &MachineConfig, strategy: Strategy, checks: Checks) -> Loop {
    let keeps_failing = |cand: &Loop| -> bool {
        // Round-trip through text: the repro we print must parse back and
        // still fail.
        let Ok(reparsed) = parse_loop(&cand.to_string()) else {
            return false;
        };
        run_case(&reparsed, m, strategy, checks).is_some()
    };

    let mut best = l.clone();
    let mut budget = 400u32; // deterministic cap on shrink attempts
    loop {
        let mut improved = false;

        // Op removal, last to first (later ops are most often leaves).
        let mut i = best.ops.len();
        while i > 0 && budget > 0 {
            i -= 1;
            budget -= 1;
            if let Some(cand) = remove_op(&best, i) {
                if keeps_failing(&cand) {
                    best = cand;
                    improved = true;
                }
            }
        }

        // Trip-count reduction: try small values first, then halving.
        let aligned = has_register_state_across_cleanup(&best);
        let floor = if aligned { 4 } else { 1 };
        let mut trips: Vec<u64> = vec![floor, floor * 2];
        let mut t = best.trip.count;
        while t / 2 > floor {
            t /= 2;
            trips.push(if aligned { (t & !3).max(4) } else { t });
        }
        for cand_trip in trips {
            if budget == 0 || cand_trip >= best.trip.count {
                continue;
            }
            budget -= 1;
            let mut cand = best.clone();
            cand.trip.count = cand_trip;
            if keeps_failing(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }

        if !improved || budget == 0 {
            break;
        }
    }
    best
}

struct Opts {
    start: u64,
    end: u64,
    fail_fast: bool,
    jobs: usize,
    checks: Checks,
    machines_dir: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        start: 0,
        end: 200,
        fail_fast: false,
        jobs: default_jobs(),
        checks: Checks::default(),
        machines_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                let v = args.next().ok_or("--seeds needs a RANGE like 0..500")?;
                let (lo, hi) = v
                    .split_once("..")
                    .ok_or_else(|| format!("bad --seeds `{v}`: expected A..B"))?;
                opts.start = lo.parse().map_err(|e| format!("bad seed start `{lo}`: {e}"))?;
                opts.end = hi.parse().map_err(|e| format!("bad seed end `{hi}`: {e}"))?;
            }
            "--fail-fast" => opts.fail_fast = true,
            "--oracle-selfcheck" => opts.checks.oracle = true,
            "--executed-selfcheck" => opts.checks.executed = true,
            "--optimal-selfcheck" => opts.checks.optimal = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a positive worker count")?;
                opts.jobs = parse_jobs(&v).map_err(|e| format!("--jobs: {e}"))?;
            }
            "--machines" => {
                opts.machines_dir = Some(args.next().ok_or("--machines needs a directory")?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.start >= opts.end {
        return Err(format!("empty seed range {}..{}", opts.start, opts.end));
    }
    Ok(opts)
}

fn report_failure(f: &Failure, l: &Loop, m: &MachineConfig, checks: Checks) {
    println!("=== FAILURE seed={} profile={} machine={} strategy={} ===", f.seed, f.profile, f.machine, f.strategy);
    println!("{}", f.what);
    let small = shrink(l, m, f.strategy, checks);
    let text = small.to_string();
    println!(
        "minimal repro ({} ops, trip {}; shrunk from {} ops, trip {}):",
        small.ops.len(),
        small.trip.count,
        l.ops.len(),
        l.trip.count
    );
    println!("{text}");
    match parse_loop(&text) {
        Ok(_) => println!("repro round-trips through `parse_loop`."),
        Err(e) => println!("WARNING: repro failed to reparse: {e}"),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz: {e}");
            eprintln!(
                "usage: fuzz [--seeds A..B] [--fail-fast] [--jobs N] [--oracle-selfcheck] \
                 [--executed-selfcheck] [--optimal-selfcheck] [--machines DIR]"
            );
            return ExitCode::from(2);
        }
    };

    let profiles = profiles();
    let machines = match machines(opts.machines_dir.as_deref()) {
        Ok(ms) => ms,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    let per_seed = (profiles.len() * machines.len() * Strategy::ALL.len()) as u64;
    let mut cases = 0u64;
    let mut failures = 0u64;

    // Shard seeds across workers in 100-seed blocks (the progress cadence)
    // and merge each block back in seed order: every printed byte — the
    // failure reports, their order, the progress lines — is identical to
    // the serial run. Shrinking happens on the merge (main) thread.
    let seeds: Vec<u64> = (opts.start..opts.end).collect();
    for block in seeds.chunks(100) {
        let block_failures: Vec<Vec<(Failure, Loop)>> =
            run_ordered(block, opts.jobs, |_, &seed| {
                let mut found = Vec::new();
                for (pname, profile) in &profiles {
                    let l = fuzz_loop(&format!("fuzz.{pname}.{seed}"), profile, seed);
                    for (mname, m) in &machines {
                        for strategy in Strategy::ALL {
                            if let Some(what) = run_case(&l, m, strategy, opts.checks) {
                                found.push((
                                    Failure {
                                        seed,
                                        profile: pname,
                                        machine: mname.clone(),
                                        strategy,
                                        what,
                                    },
                                    l.clone(),
                                ));
                            }
                        }
                    }
                }
                found
            });
        for (seed, fs) in block.iter().zip(block_failures) {
            cases += per_seed;
            for (f, l) in &fs {
                failures += 1;
                let m = &machines.iter().find(|(n, _)| *n == f.machine).expect("known machine").1;
                report_failure(f, l, m, opts.checks);
                if opts.fail_fast {
                    println!("fuzz: stopping at first failure (--fail-fast)");
                    return ExitCode::FAILURE;
                }
            }
            let done = seed - opts.start + 1;
            if done % 100 == 0 {
                println!(
                    "fuzz: {done}/{} seeds, {cases} cases, {failures} failures",
                    opts.end - opts.start
                );
            }
        }
    }

    println!(
        "fuzz: done — {} seeds, {cases} cases ({} profiles × {} machines × {} strategies), {failures} failures",
        opts.end - opts.start,
        profiles.len(),
        machines.len(),
        Strategy::ALL.len()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        println!("zero divergences.");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    #[test]
    fn remove_op_drops_unreferenced_and_renumbers() {
        let mut b = LoopBuilder::new("t");
        b.trip(8);
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let _unused = b.load(x, 1, 1);
        let m2 = b.fmul(lx, lx);
        b.reduce_add(m2);
        let l = b.finish();
        // lx is referenced; the second load is dead.
        assert!(remove_op(&l, lx.index()).is_none());
        let smaller = remove_op(&l, 1).expect("dead load is removable");
        assert_eq!(smaller.ops.len(), l.ops.len() - 1);
        smaller.verify().expect("renumbered loop verifies");
        // The repro path the shrinker relies on: text round-trips.
        let reparsed = parse_loop(&smaller.to_string()).expect("round-trips");
        assert_eq!(reparsed.ops.len(), smaller.ops.len());
    }

    #[test]
    fn fuzz_loops_are_deterministic_across_calls() {
        let p = SynthProfile::broad();
        let a = fuzz_loop("t", &p, 7);
        let b = fuzz_loop("t", &p, 7);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn shrink_returns_input_when_nothing_fails() {
        // A healthy loop never satisfies keeps_failing, so shrinking is
        // the identity — the shrinker must not "improve" a non-failure.
        let l = fuzz_loop("t", &SynthProfile::broad(), 3);
        let m = MachineConfig::paper_default();
        assert!(run_case(&l, &m, Strategy::Selective, Checks::default()).is_none());
        let s = shrink(&l, &m, Strategy::Selective, Checks::default());
        assert_eq!(s.to_string(), l.to_string());
    }

    #[test]
    fn oracle_selfcheck_passes_on_seeded_cases() {
        // The engines must agree bit-for-bit on a healthy case under every
        // strategy — the same predicate `--oracle-selfcheck` sweeps.
        let l = fuzz_loop("t", &SynthProfile::broad(), 11);
        let m = MachineConfig::paper_default();
        for strategy in Strategy::ALL {
            let checks = Checks { oracle: true, ..Checks::default() };
            assert!(run_case(&l, &m, strategy, checks).is_none(), "{strategy}");
        }
    }

    #[test]
    fn executed_selfcheck_passes_on_seeded_cases() {
        // The cycle-accurate executor must match the reference engine and
        // sustain the scheduled II on a healthy case under every strategy
        // — the same predicate `--executed-selfcheck` sweeps.
        let l = fuzz_loop("t", &SynthProfile::broad(), 13);
        let m = MachineConfig::paper_default();
        for strategy in Strategy::ALL {
            let checks = Checks { executed: true, ..Checks::default() };
            assert!(run_case(&l, &m, strategy, checks).is_none(), "{strategy}");
        }
    }

    #[test]
    fn predicated_profile_emits_selects_and_passes_selfchecks() {
        // The predicated profile must actually produce cmp/select chains,
        // and those chains must hold the same engine + executed gates the
        // CI sweeps enforce.
        let (_, profile) = profiles().into_iter().find(|(n, _)| *n == "predicated").unwrap();
        let m = MachineConfig::paper_default();
        let mut saw_select = false;
        for seed in 0..8 {
            let l = fuzz_loop(&format!("t{seed}"), &profile, seed);
            saw_select |= l.ops.iter().any(|o| o.opcode.kind == sv_ir::OpKind::Select);
            for strategy in Strategy::ALL {
                let checks = Checks { oracle: true, executed: true, ..Checks::default() };
                assert!(run_case(&l, &m, strategy, checks).is_none(), "seed {seed} {strategy}");
            }
        }
        assert!(saw_select, "predicated profile never emitted a select in 8 seeds");
    }

    #[test]
    fn optimal_selfcheck_passes_on_seeded_cases() {
        // The oracle must close its proof at or below the heuristic's II,
        // agree with the driver's delivery, and sustain the proved II in
        // execution — the same predicate `--optimal-selfcheck` sweeps.
        let l = fuzz_loop("t", &SynthProfile::broad(), 17);
        let m = MachineConfig::paper_default();
        let checks = Checks { optimal: true, ..Checks::default() };
        assert!(run_case(&l, &m, Strategy::Selective, checks).is_none());
    }
}
