//! Criterion micro-benchmarks of the compilation algorithms themselves,
//! checking the paper's §3.2 claim that partitioning time is small next to
//! modulo scheduling, plus an ablation of the sum-of-squares tie-break.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sv_analysis::DepGraph;
use sv_core::{partition_ops, SelectiveConfig};
use sv_machine::MachineConfig;
use sv_modsched::modulo_schedule;
use sv_vectorize::transform;
use sv_workloads::{synth_loop, SynthProfile};

fn sized_profile(loads: u32, arith: u32) -> SynthProfile {
    SynthProfile {
        loads: (loads, loads),
        arith: (arith, arith),
        stores: (2, 2),
        nonunit_prob: 0.1,
        reduction_prob: 0.3,
        reassoc: false,
        recurrence_prob: 0.1,
        div_prob: 0.02,
        carried_prob: 0.05,
        trip: (128, 128),
        invocations: (1, 1),
    }
}

fn bench_partitioner(c: &mut Criterion) {
    let m = MachineConfig::paper_default();
    let mut group = c.benchmark_group("partitioner");
    for (loads, arith) in [(4u32, 6u32), (8, 16), (12, 32)] {
        let l = synth_loop("bench", &sized_profile(loads, arith), 7);
        let g = DepGraph::build(&l);
        let n = l.ops.len();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| partition_ops(&l, &g, &m, &SelectiveConfig::default()))
        });
    }
    group.finish();
}

fn bench_modulo_scheduler(c: &mut Criterion) {
    let m = MachineConfig::paper_default();
    let mut group = c.benchmark_group("modulo_scheduler");
    for (loads, arith) in [(4u32, 6u32), (8, 16), (12, 32)] {
        let l = synth_loop("bench", &sized_profile(loads, arith), 7);
        // Schedule the transformed (unrolled) loop, as the pipeline does.
        let t = transform(&l, &m, &vec![false; l.ops.len()]);
        let g = DepGraph::build(&t.looop);
        let n = t.looop.ops.len();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| modulo_schedule(&t.looop, &g, &m).unwrap())
        });
    }
    group.finish();
}

fn bench_dependence_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_analysis");
    for (loads, arith) in [(8u32, 16u32), (12, 32)] {
        let l = synth_loop("bench", &sized_profile(loads, arith), 7);
        let n = l.ops.len();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DepGraph::build(&l))
        });
    }
    group.finish();
}

fn bench_tiebreak_ablation(c: &mut Criterion) {
    let m = MachineConfig::paper_default();
    let l = synth_loop("bench", &sized_profile(8, 16), 11);
    let g = DepGraph::build(&l);
    let mut group = c.benchmark_group("ablation_squares_tiebreak");
    for (name, squares) in [("with_squares", true), ("without_squares", false)] {
        let cfg = SelectiveConfig { squares_tiebreak: squares, ..Default::default() };
        group.bench_function(name, |b| b.iter(|| partition_ops(&l, &g, &m, &cfg)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioner,
    bench_modulo_scheduler,
    bench_dependence_analysis,
    bench_tiebreak_ablation
);
criterion_main!(benches);
