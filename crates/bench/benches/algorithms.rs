//! Micro-benchmarks of the compilation algorithms themselves, checking the
//! paper's §3.2 claim that partitioning time is small next to modulo
//! scheduling, plus an ablation of the sum-of-squares tie-break.
//!
//! Dependency-free harness (`harness = false`): each case is warmed up,
//! then timed over enough iterations to smooth scheduler noise, reporting
//! the per-iteration median of several batches. Run with
//! `cargo bench -p sv-bench`.

use std::time::Instant;
use sv_analysis::DepGraph;
use sv_core::{partition_ops, SelectiveConfig};
use sv_machine::MachineConfig;
use sv_modsched::modulo_schedule;
use sv_vectorize::transform;
use sv_workloads::{synth_loop, SynthProfile};

fn sized_profile(loads: u32, arith: u32) -> SynthProfile {
    SynthProfile {
        loads: (loads, loads),
        arith: (arith, arith),
        stores: (2, 2),
        nonunit_prob: 0.1,
        reduction_prob: 0.3,
        reassoc: false,
        recurrence_prob: 0.1,
        div_prob: 0.02,
        carried_prob: 0.05,
        cmp_select_prob: 0.0,
        trip: (128, 128),
        invocations: (1, 1),
    }
}

/// Time `f` and print a per-call figure: 3 warmup calls, then the median
/// of 5 batches sized to take roughly 50ms each.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    // Size a batch from a single timed probe.
    let probe = Instant::now();
    f();
    let per_call = probe.elapsed().max(std::time::Duration::from_nanos(50));
    let batch = (50_000_000u128 / per_call.as_nanos()).clamp(1, 100_000) as u32;
    let mut per_iter: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_secs_f64() / f64::from(batch)
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!("{group}/{name:<18} {:>12.2} µs/iter  ({batch} iters/batch)", median * 1e6);
}

fn main() {
    let m = MachineConfig::paper_default();

    for (loads, arith) in [(4u32, 6u32), (8, 16), (12, 32)] {
        let l = synth_loop("bench", &sized_profile(loads, arith), 7);
        let g = DepGraph::build(&l);
        let n = l.ops.len();
        bench("partitioner", &format!("{n}_ops"), || {
            let _ = partition_ops(&l, &g, &m, &SelectiveConfig::default());
        });
    }

    for (loads, arith) in [(4u32, 6u32), (8, 16), (12, 32)] {
        let l = synth_loop("bench", &sized_profile(loads, arith), 7);
        // Schedule the transformed (unrolled) loop, as the pipeline does.
        let t = transform(&l, &m, &vec![false; l.ops.len()]);
        let g = DepGraph::build(&t.looop);
        let n = t.looop.ops.len();
        bench("modulo_scheduler", &format!("{n}_ops"), || {
            let _ = modulo_schedule(&t.looop, &g, &m).unwrap();
        });
    }

    for (loads, arith) in [(8u32, 16u32), (12, 32)] {
        let l = synth_loop("bench", &sized_profile(loads, arith), 7);
        let n = l.ops.len();
        bench("dependence_analysis", &format!("{n}_ops"), || {
            let _ = DepGraph::build(&l);
        });
    }

    let l = synth_loop("bench", &sized_profile(8, 16), 11);
    let g = DepGraph::build(&l);
    for (name, squares) in [("with_squares", true), ("without_squares", false)] {
        let cfg = SelectiveConfig { squares_tiebreak: squares, ..Default::default() };
        bench("ablation_squares_tiebreak", name, || {
            let _ = partition_ops(&l, &g, &m, &cfg);
        });
    }
}
