//! A deterministic sharded work pool for independent compilations.
//!
//! Every experiment harness in this workspace — the table binaries, the
//! differential fuzzer, the integration tests — runs `compile_checked`
//! over a long list of independent `(suite, loop, strategy, machine)`
//! jobs. [`run_ordered`] fans such a job list out across `N` worker
//! threads and merges the results back **in job order**, so the caller
//! observes exactly the sequence the serial loop would have produced:
//! the parallel path is byte-for-byte output-compatible with the serial
//! one, and `--jobs 1` *is* the serial one (jobs run inline, no threads
//! are spawned).
//!
//! Only `std::thread` and channels are used; the pool is a plain atomic
//! work-index shared by the workers (dynamic self-scheduling), so a slow
//! job never idles the other workers the way fixed chunking would.
//!
//! ```
//! use sv_core::parallel::run_ordered;
//!
//! let squares = run_ordered(&[1u64, 2, 3, 4], 8, |_idx, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The worker-thread count to use when the caller does not say: the
/// `SV_JOBS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when unknown).
/// An `SV_JOBS` value that is not a positive integer is diagnosed on
/// stderr (once per call) rather than silently ignored.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SV_JOBS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "sv-core: ignoring invalid SV_JOBS=`{v}` (expected a positive integer); \
                 falling back to available parallelism"
            ),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parse the operand of a `--jobs` flag.
///
/// # Errors
///
/// Returns a human-readable message when `v` is not a positive integer.
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad --jobs `{v}`: expected a positive integer")),
    }
}

/// Run `f` over every item of `items` on up to `workers` threads and
/// return the outputs in item order.
///
/// `f` receives `(index, &item)`. Results are merged by index, so the
/// output vector is identical to `items.iter().enumerate().map(...)` no
/// matter how the jobs interleave at runtime. With `workers <= 1` (or
/// fewer than two items) everything runs inline on the caller's thread.
///
/// # Panics
///
/// A panic inside `f` is re-raised on the calling thread (after the
/// remaining workers drain), preserving `should_panic`-style test
/// behavior across the pool boundary.
pub fn run_ordered<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let threads = workers.min(items.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    let mut slots: Vec<Option<O>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    // A send can only fail if the receiver is gone, which
                    // means the main thread is already unwinding.
                    if tx.send((i, f(i, item))).is_err() {
                        break;
                    }
                })
            })
            .collect();
        drop(tx);
        for (i, out) in rx {
            slots[i] = Some(out);
        }
        for h in handles {
            if let Err(p) = h.join() {
                // Keep the first panic; let remaining workers finish
                // (they already stopped producing — the channel is gone).
                panic_payload.get_or_insert(p);
            }
        }
    });
    if let Some(p) = panic_payload {
        resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 4, 8, 300] {
            let out = run_ordered(&items, workers, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        // The core determinism contract: any worker count produces the
        // byte-identical result of the inline path.
        let items: Vec<u64> = (0..64).map(|i| i * 17 + 3).collect();
        let serial = run_ordered(&items, 1, |i, &x| format!("{i}:{}", x % 7));
        for workers in [2, 4, 8] {
            let par = run_ordered(&items, workers, |i, &x| format!("{i}:{}", x % 7));
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let none: Vec<u32> = Vec::new();
        assert!(run_ordered(&none, 4, |_, &x| x).is_empty());
        assert_eq!(run_ordered(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            run_ordered(&items, 4, |_, &x| {
                assert!(x != 11, "job 11 exploded");
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn default_jobs_warns_and_falls_back_on_invalid_sv_jobs() {
        // The env var is process-global; this is the only test in this
        // binary that touches SV_JOBS, so no cross-test race.
        std::env::set_var("SV_JOBS", "abc");
        assert!(default_jobs() >= 1);
        std::env::set_var("SV_JOBS", "0");
        assert!(default_jobs() >= 1);
        std::env::set_var("SV_JOBS", "3");
        assert_eq!(default_jobs(), 3);
        std::env::remove_var("SV_JOBS");
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("1").unwrap(), 1);
        assert_eq!(parse_jobs(" 16 ").unwrap(), 16);
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("lots").is_err());
    }
}
