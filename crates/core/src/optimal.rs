//! The optimal-II oracle: certified minimum kernel initiation interval
//! over every legal scalar/vector partition.
//!
//! The Kernighan–Lin partitioner in [`crate::partition`] is a heuristic:
//! it minimizes an *estimated* ResMII and hands the winner to an
//! *iterative* (incomplete) modulo scheduler. This module answers the
//! question the heuristic cannot: what is the true minimum II any
//! partition of this loop can achieve on this machine — and does the
//! heuristic reach it?
//!
//! The search is a branch-and-bound over per-op scalar/vector assignments
//! (the generic engine lives in `sv_analysis::optimal`; this module is the
//! problem instance):
//!
//! * **Nodes** are partial assignments over the movable ops — the same
//!   legality screen ([`crate::partition`]'s `movable_ops`) the KL
//!   partitioner uses, so both searches cover the same space. Non-movable
//!   ops are pinned scalar.
//! * **Lower bound** — the maximum of two sound, partition-independent-or
//!   monotone bounds:
//!   1. a *filtered-choice resource bound*: the smallest II where every
//!      op has at least one assignment whose own reservations fit the II
//!      alone, and — for every modelled resource *group* (each single
//!      class, plus unions like `{fp, vector}` that couple the classes
//!      an op's two assignments split across) — the totals of each op's
//!      cheapest surviving assignment *within that group* (decided ops
//!      contribute exactly their decided assignment, including any
//!      scalar↔vector transfer already forced by a decided
//!      producer/consumer pair) fit `II × group capacity`. Grouping is
//!      what gives the bound teeth: the component-wise min of a scalar
//!      assignment (fp cycles) and a vector assignment (vector cycles)
//!      is zero in both classes, but their `{fp, vector}` group sum is
//!      not;
//!   2. a *global recurrence bound*: any source dependence cycle with
//!      delay `L` and distance `D` forces the transformed loop (which
//!      covers `k` original iterations) to an II of at least
//!      `⌈k·L/D⌉` in **every** partition, because vector latencies equal
//!      scalar latencies and the cycle's dataflow survives both unrolling
//!      and vectorization.
//! * **Leaves** are complete partitions: the real transformer
//!   ([`sv_vectorize::try_transform`]) builds the transformed loop, and
//!   the exact modulo-schedule feasibility probe
//!   ([`sv_modsched::exact_schedule`]) decides each candidate II from the
//!   transformed loop's MII upward — ascending, sequentially, because
//!   modulo-schedule feasibility is not monotone in II.
//!
//! Every improvement is a *witness*: the transformed loop plus a complete,
//! validated [`Schedule`] at the improved II. [`OptimalOutcome::Proved`]
//! is only returned when the tree closed within the node budget and every
//! leaf probe was decisive; a single exhausted probe degrades the run to
//! [`OptimalOutcome::BudgetExhausted`] carrying the best witnessed value.
//! Partitions the transformer rejects are excluded from the minimum — the
//! oracle certifies the best *deliverable* II, the same space the driver
//! can actually compile.

use crate::partition::{movable_ops, op_misaligned};
use sv_analysis::{
    branch_and_bound, vectorizable_ops, BnbProblem, DepGraph, DepKind, LeafEval, NodeBudget,
    OptimalOutcome, SearchStats,
};
use sv_ir::{Loop, OpKind, Opcode, VectorForm};
use sv_machine::{MachineConfig, Reservation, ResourceClass, TransferDirection};
use sv_modsched::{compute_mii, exact_schedule, ExactOutcome, ProbeBudget, Schedule};
use sv_vectorize::try_transform;

/// Deterministic effort limits for one oracle run.
#[derive(Debug, Clone)]
pub struct OptimalConfig {
    /// Branch-and-bound tree nodes the search may expand.
    pub max_nodes: u64,
    /// Residue-placement attempts shared by every exact schedule probe
    /// across the whole search (the expensive inner work).
    pub probe_budget: u64,
}

impl Default for OptimalConfig {
    fn default() -> OptimalConfig {
        OptimalConfig { max_nodes: 1_000_000, probe_budget: 20_000_000 }
    }
}

/// A certified improvement over the incumbent: the partition, its
/// transformed loop and a complete exact schedule at the improved II.
#[derive(Debug, Clone)]
pub struct OptimalWitness {
    /// `true` = vector, per source operation.
    pub partition: Vec<bool>,
    /// The transformed loop (covers `vector_length` original iterations).
    pub looop: Loop,
    /// The witnessing schedule; its `ii` is the proved value.
    pub schedule: Schedule,
}

/// Everything one oracle run concluded.
#[derive(Debug, Clone)]
pub struct OptimalReport {
    /// Proved minimum or budget-limited best.
    pub outcome: OptimalOutcome,
    /// Search-tree effort.
    pub stats: SearchStats,
    /// Exact-probe effort actually spent.
    pub probe_spent: u64,
    /// The root lower bound (every partition's II is at least this).
    pub root_lower_bound: u32,
    /// Number of ops the search may move to the vector partition.
    pub movable: u32,
    /// Witness for the best value when it improved on the incumbent;
    /// `None` when the incumbent partition already attains the outcome.
    pub witness: Option<OptimalWitness>,
}

/// Number of modelled resource classes (`ResourceClass::ALL`).
const NC: usize = 9;

/// Number of resource groups the bound aggregates over.
const NG: usize = 13;

/// Resource groups as bitmasks over `ResourceClass::ALL` slots: every
/// singleton class, plus the unions that couple the classes an op's two
/// assignments split across (scalar work lands on int/fp, vector work on
/// the vector unit, and both consume issue-like slots). Any union of
/// classes yields a sound aggregate bound — total demand within the union
/// cannot exceed `II × summed capacity` — and these four are the ones the
/// scalar/vector choice actually trades between.
const GROUPS: [u16; NG] = [
    0b0000_0001, // issue
    0b0000_0010, // int
    0b0000_0100, // fp
    0b0000_1000, // mem
    0b0001_0000, // branch
    0b0010_0000, // vector
    0b0100_0000, // merge
    0b1000_0000, // vissue
    0b1_0000_0000, // select (shared by scalar and vector selects — no union)
    0b0010_0100, // fp + vector
    0b0010_0010, // int + vector
    0b0010_0110, // int + fp + vector
    0b1000_0001, // issue + vissue
];

/// Per-group sums of a per-class cycle vector.
fn group_sums(fp: &[u64; NC]) -> [u64; NG] {
    let mut out = [0u64; NG];
    for (g, &mask) in GROUPS.iter().enumerate() {
        for (slot, &c) in fp.iter().enumerate() {
            if mask & (1 << slot) != 0 {
                out[g] += c;
            }
        }
    }
    out
}

/// Total reserved cycles per resource class for one reservation list.
fn class_cycles(reqs: &[Reservation]) -> [u64; NC] {
    let mut out = [0u64; NC];
    for r in reqs {
        let slot = ResourceClass::ALL
            .iter()
            .position(|&c| c == r.class)
            .expect("every reservation class is in ALL");
        out[slot] += u64::from(r.cycles);
    }
    out
}

/// The longest single reservation in the list (a reservation spanning more
/// than II cycles wraps the reservation table onto itself — infeasible).
fn max_reservation(reqs: &[Reservation]) -> u64 {
    reqs.iter().map(|r| u64::from(r.cycles)).max().unwrap_or(0)
}

/// The branch-and-bound problem instance over one loop × machine.
struct Oracle<'a> {
    l: &'a Loop,
    m: &'a MachineConfig,
    /// Summed capacity per resource group.
    group_caps: [u64; NG],
    overhead: [u64; NG],
    /// Movable op indices in branch order (largest footprint spread first).
    order: Vec<usize>,
    /// The incumbent's assignment, used as each node's first child so the
    /// dive reaches the heuristic leaf before anything else.
    guide: Vec<bool>,
    /// Register-dataflow consumers per op (excluding self-loops).
    consumers: Vec<Vec<usize>>,
    /// Scalar-assignment footprint: `k` copies' cycles, per group.
    scalar_fp: Vec<[u64; NG]>,
    scalar_max_res: Vec<u64>,
    /// Vector-assignment footprint (with realignment merge), movable only.
    vector_fp: Vec<Option<[u64; NG]>>,
    vector_max_res: Vec<u64>,
    /// Transfer footprints for this op's value: `[scalar→vector,
    /// vector→scalar]`, charged once at the producer.
    comm_fp: Vec<[[u64; NG]; 2]>,
    /// The global recurrence bound, computed once — partition-independent.
    rec_lb: u32,
    probe: ProbeBudget,
    witness: Option<OptimalWitness>,
}

impl<'a> Oracle<'a> {
    fn new(
        l: &'a Loop,
        m: &'a MachineConfig,
        g: &DepGraph,
        movable: &[bool],
        guide: Vec<bool>,
        probe_budget: u64,
    ) -> Oracle<'a> {
        let pool = m.resource_pool();
        let k = m.vector_length;
        let caps: [u64; NC] = {
            let mut caps = [0u64; NC];
            for (slot, &c) in ResourceClass::ALL.iter().enumerate() {
                caps[slot] = u64::from(pool.capacity(c));
            }
            caps
        };
        let group_caps = group_sums(&caps);
        let mut overhead_classes = [0u64; NC];
        for reqs in m.loop_overhead() {
            for (t, c) in overhead_classes.iter_mut().zip(class_cycles(&reqs)) {
                *t += c;
            }
        }
        let overhead = group_sums(&overhead_classes);
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); l.ops.len()];
        for e in g.edges() {
            if e.is_mem || e.src == e.dst {
                continue;
            }
            if !consumers[e.src.index()].contains(&e.dst.index()) {
                consumers[e.src.index()].push(e.dst.index());
            }
        }
        let mut scalar_fp = Vec::with_capacity(l.ops.len());
        let mut scalar_max_res = Vec::with_capacity(l.ops.len());
        let mut vector_fp = Vec::with_capacity(l.ops.len());
        let mut vector_max_res = Vec::with_capacity(l.ops.len());
        let mut comm_fp = Vec::with_capacity(l.ops.len());
        for (i, op) in l.ops.iter().enumerate() {
            let sreqs = m.requirements(op.opcode);
            let mut sc = class_cycles(&sreqs);
            for c in sc.iter_mut() {
                *c *= u64::from(k);
            }
            scalar_fp.push(group_sums(&sc));
            scalar_max_res.push(max_reservation(&sreqs));
            if movable[i] {
                let vopc = op.opcode.with_form(VectorForm::Vector);
                let mut vreqs = m.requirements(vopc);
                if op.opcode.kind.is_mem() && op_misaligned(l, m, op) {
                    vreqs.extend(m.requirements(Opcode::vector(OpKind::Merge, op.opcode.ty)));
                }
                vector_fp.push(Some(group_sums(&class_cycles(&vreqs))));
                vector_max_res.push(max_reservation(&vreqs));
            } else {
                vector_fp.push(None);
                vector_max_res.push(0);
            }
            let seq = |dir| -> [u64; NG] {
                let reqs: Vec<Reservation> = m
                    .comm
                    .transfer_opcodes(dir, op.opcode.ty, k)
                    .iter()
                    .flat_map(|opc| m.requirements(*opc))
                    .collect();
                group_sums(&class_cycles(&reqs))
            };
            comm_fp.push([
                seq(TransferDirection::ScalarToVector),
                seq(TransferDirection::VectorToScalar),
            ]);
        }
        // Branch order: decide the ops whose two assignments differ most
        // first — they move the bound furthest, so mistakes prune early.
        let mut order: Vec<usize> = (0..l.ops.len()).filter(|&i| movable[i]).collect();
        let spread = |i: usize| -> u64 {
            let v = vector_fp[i].expect("movable op has a vector footprint");
            scalar_fp[i].iter().zip(&v).map(|(&s, &vc)| s.abs_diff(vc)).sum()
        };
        order.sort_by_key(|&i| (std::cmp::Reverse(spread(i)), i));

        let rec_lb = global_recurrence_lb(l, g, m);
        Oracle {
            l,
            m,
            group_caps,
            overhead,
            order,
            guide,
            consumers,
            scalar_fp,
            scalar_max_res,
            vector_fp,
            vector_max_res,
            comm_fp,
            rec_lb,
            probe: ProbeBudget::new(probe_budget),
            witness: None,
        }
    }

    /// Whether one assignment's reservations can fit an II at all, on
    /// their own: no single reservation wraps, and no group needs more
    /// than `II × capacity` cycles.
    fn fits_alone(&self, fp: &[u64; NG], max_res: u64, ii: u64) -> bool {
        max_res <= ii
            && fp.iter().zip(&self.group_caps).all(|(&c, &cap)| {
                if cap == 0 {
                    c == 0
                } else {
                    c.div_ceil(cap) <= ii
                }
            })
    }

    /// The filtered-choice resource relaxation at one II: `false` means no
    /// completion of `node` can schedule at `ii`.
    fn resources_feasible(&self, node: &[Option<bool>], ii: u64) -> bool {
        let mut totals = self.overhead;
        for i in 0..self.l.ops.len() {
            let defines = self.l.ops[i].defines_value();
            // Transfers already forced by decided producer/consumer pairs
            // are part of the producer's assignment footprint.
            let consumer_decided = |want: bool| {
                defines && self.consumers[i].iter().any(|&c| node[c] == Some(want))
            };
            let scalar = |fp: &mut [u64; NG]| {
                *fp = self.scalar_fp[i];
                if consumer_decided(true) {
                    for (t, c) in fp.iter_mut().zip(&self.comm_fp[i][0]) {
                        *t += c;
                    }
                }
            };
            let vector = |fp: &mut [u64; NG]| -> bool {
                let Some(v) = &self.vector_fp[i] else { return false };
                *fp = *v;
                if consumer_decided(false) {
                    for (t, c) in fp.iter_mut().zip(&self.comm_fp[i][1]) {
                        *t += c;
                    }
                }
                true
            };
            let mut sfp = [0u64; NG];
            let mut vfp = [0u64; NG];
            match node[i] {
                Some(false) => {
                    scalar(&mut sfp);
                    if !self.fits_alone(&sfp, self.scalar_max_res[i], ii) {
                        return false;
                    }
                    for (t, c) in totals.iter_mut().zip(&sfp) {
                        *t += c;
                    }
                }
                Some(true) => {
                    if !vector(&mut vfp) {
                        return false;
                    }
                    if !self.fits_alone(&vfp, self.vector_max_res[i], ii) {
                        return false;
                    }
                    for (t, c) in totals.iter_mut().zip(&vfp) {
                        *t += c;
                    }
                }
                None => {
                    scalar(&mut sfp);
                    let s_ok = self.fits_alone(&sfp, self.scalar_max_res[i], ii);
                    let v_ok = vector(&mut vfp)
                        && self.fits_alone(&vfp, self.vector_max_res[i], ii);
                    match (s_ok, v_ok) {
                        (false, false) => return false,
                        (true, false) => {
                            for (t, c) in totals.iter_mut().zip(&sfp) {
                                *t += c;
                            }
                        }
                        (false, true) => {
                            for (t, c) in totals.iter_mut().zip(&vfp) {
                                *t += c;
                            }
                        }
                        (true, true) => {
                            for ((t, s), v) in totals.iter_mut().zip(&sfp).zip(&vfp) {
                                *t += (*s).min(*v);
                            }
                        }
                    }
                }
            }
        }
        totals.iter().zip(&self.group_caps).all(|(&t, &cap)| {
            if cap == 0 {
                t == 0
            } else {
                t.div_ceil(cap) <= ii
            }
        })
    }

    /// Smallest II the resource relaxation admits (monotone in II, so a
    /// binary search is exact).
    fn resource_lb(&self, node: &[Option<bool>]) -> u32 {
        const CEILING: u64 = 1 << 20;
        let mut hi = 1u64;
        while !self.resources_feasible(node, hi) {
            hi *= 2;
            if hi > CEILING {
                return u32::MAX;
            }
        }
        let mut lo = 1u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.resources_feasible(node, mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as u32
    }
}

/// The partition-independent recurrence bound on the transformed loop's
/// II: for every source dependence cycle with delay `L` and distance `D`,
/// steady-state throughput cannot exceed `D/L` iterations per cycle no
/// matter how the ops are assigned (vector latencies equal scalar
/// latencies), and the transformed loop retires `k` original iterations
/// per kernel iteration — so `II ≥ ⌈k·L/D⌉`. Found by binary search over
/// positive-cycle detection on `k·delay − II·distance` weights.
fn global_recurrence_lb(l: &Loop, g: &DepGraph, m: &MachineConfig) -> u32 {
    let k = i64::from(m.vector_length);
    let edges: Vec<(usize, usize, i64, i64)> = g
        .edges()
        .iter()
        .map(|e| {
            let delay = if !e.is_mem || matches!(e.kind, DepKind::Flow) {
                i64::from(m.latency(l.ops[e.src.index()].opcode))
            } else if matches!(e.kind, DepKind::Anti) {
                0
            } else {
                1
            };
            (e.src.index(), e.dst.index(), delay, i64::from(e.distance))
        })
        .collect();
    let max_delay: i64 = edges.iter().map(|e| (k * e.2).max(0)).sum();
    if max_delay == 0 || edges.is_empty() {
        return 1;
    }
    let positive_cycle = |ii: i64| -> bool {
        let n = l.ops.len();
        let mut dist = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for &(s, d, delay, dd) in &edges {
                let w = k * delay - ii * dd;
                if dist[s] + w > dist[d] {
                    dist[d] = dist[s] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        true
    };
    let (mut lo, mut hi) = (1i64, max_delay.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if positive_cycle(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

impl BnbProblem for Oracle<'_> {
    type Node = Vec<Option<bool>>;

    fn lower_bound(&mut self, node: &Self::Node) -> u32 {
        self.rec_lb.max(self.resource_lb(node)).max(1)
    }

    fn branch(&mut self, node: &Self::Node) -> Option<Vec<Self::Node>> {
        let i = *self.order.iter().find(|&&i| node[i].is_none())?;
        let mut first = node.clone();
        let mut second = node.clone();
        // Dive toward the incumbent's assignment first: the heuristic leaf
        // is evaluated before anything else, so the incumbent tightens (or
        // is confirmed) as early as possible.
        first[i] = Some(self.guide[i]);
        second[i] = Some(!self.guide[i]);
        Some(vec![first, second])
    }

    fn evaluate_leaf(&mut self, node: &Self::Node, incumbent: u32) -> LeafEval {
        let part: Vec<bool> = node.iter().map(|d| d.unwrap_or(false)).collect();
        // A partition the transformer rejects is not deliverable; it
        // cannot witness a minimum.
        let Ok(t) = try_transform(self.l, self.m, &part) else {
            return LeafEval::NoImprovement;
        };
        let g = DepGraph::build(&t.looop);
        let mii = compute_mii(&t.looop, &g, self.m);
        if mii >= incumbent {
            return LeafEval::NoImprovement;
        }
        // Feasibility is not monotone in II: probe each candidate in
        // ascending order and take the first feasible one.
        for ii in mii..incumbent {
            match exact_schedule(&t.looop, &g, self.m, ii, &mut self.probe) {
                ExactOutcome::Feasible(s) => {
                    self.witness = Some(OptimalWitness {
                        partition: part,
                        looop: t.looop,
                        schedule: *s,
                    });
                    return LeafEval::Improved(ii);
                }
                ExactOutcome::Infeasible => {}
                ExactOutcome::Budget => return LeafEval::Undecided,
            }
        }
        LeafEval::NoImprovement
    }
}

/// Run the oracle for `l` on `m`, starting from a witnessed incumbent (the
/// heuristic's partition and the kernel II the driver actually scheduled
/// for it). Returns the certified outcome; when the best value improves on
/// `incumbent_ii` the report carries a full witness.
///
/// `incumbent_partition` must assign `true` only to legally movable ops —
/// any partition the KL partitioner produces qualifies.
pub fn optimal_search(
    l: &Loop,
    m: &MachineConfig,
    incumbent_partition: &[bool],
    incumbent_ii: u32,
    cfg: &OptimalConfig,
) -> OptimalReport {
    let g = DepGraph::build(l);
    let statuses = vectorizable_ops(l, &g, m.vector_length);
    let movable = movable_ops(l, m, &statuses);
    let guide: Vec<bool> = incumbent_partition
        .iter()
        .zip(&movable)
        .map(|(&p, &mv)| p && mv)
        .collect();
    let movable_count = movable.iter().filter(|&&v| v).count() as u32;
    let mut oracle = Oracle::new(l, m, &g, &movable, guide, cfg.probe_budget);
    let root: Vec<Option<bool>> = movable
        .iter()
        .map(|&mv| if mv { None } else { Some(false) })
        .collect();
    let root_lower_bound = oracle.rec_lb.max(oracle.resource_lb(&root)).max(1);
    let (outcome, stats) =
        branch_and_bound(&mut oracle, root, incumbent_ii, NodeBudget::new(cfg.max_nodes));
    OptimalReport {
        outcome,
        stats,
        probe_spent: oracle.probe.spent,
        root_lower_bound,
        movable: movable_count,
        witness: oracle.witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_ops, SelectiveConfig};
    use crate::{compile, Strategy};
    use sv_ir::{LoopBuilder, ScalarType};

    fn figure1_dot() -> Loop {
        let mut b = LoopBuilder::new("dot");
        b.trip(1000);
        let x = b.array("x", ScalarType::F64, 1024);
        let y = b.array("y", ScalarType::F64, 1024);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        b.finish()
    }

    fn incumbent(l: &Loop, m: &MachineConfig) -> (Vec<bool>, u32) {
        let c = compile(l, m, Strategy::Selective).unwrap();
        let ii = c.segments[0].schedule.ii;
        let g = DepGraph::build(l);
        let p = partition_ops(l, &g, m, &SelectiveConfig::default());
        (p.partition, ii)
    }

    #[test]
    fn proves_figure1_selective_is_optimal() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let (part, ii) = incumbent(&l, &m);
        assert_eq!(ii, 2); // II 1.0 per original iteration at k = 2.
        let r = optimal_search(&l, &m, &part, ii, &OptimalConfig::default());
        assert_eq!(r.outcome, OptimalOutcome::Proved(2));
        assert!(r.witness.is_none(), "the heuristic already attains the optimum");
        assert!(r.root_lower_bound <= 2);
    }

    #[test]
    fn proves_on_the_paper_machine() {
        let l = figure1_dot();
        let m = MachineConfig::paper_default();
        let (part, ii) = incumbent(&l, &m);
        let r = optimal_search(&l, &m, &part, ii, &OptimalConfig::default());
        assert!(r.outcome.is_proved());
        assert!(r.outcome.best() <= ii);
        assert!(r.outcome.best() >= r.root_lower_bound);
    }

    #[test]
    fn witness_schedule_matches_the_proved_ii() {
        // Loose incumbent: the oracle must beat it and hand back a witness
        // whose schedule II equals the proved value.
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let (part, ii) = incumbent(&l, &m);
        let r = optimal_search(&l, &m, &part, ii + 3, &OptimalConfig::default());
        assert_eq!(r.outcome, OptimalOutcome::Proved(2));
        let w = r.witness.expect("improved on the loose incumbent");
        assert_eq!(w.schedule.ii, 2);
        assert_eq!(w.partition.len(), l.ops.len());
        // The witness schedule is structurally valid for its loop.
        let g = DepGraph::build(&w.looop);
        sv_modsched::validate_schedule(&w.looop, &g, &m, &w.schedule).unwrap();
    }

    #[test]
    fn tiny_node_budget_degrades() {
        // A loose incumbent keeps the root from pruning; one node is then
        // never enough to close a tree with movable ops.
        let l = figure1_dot();
        let m = MachineConfig::paper_default();
        let (part, ii) = incumbent(&l, &m);
        let cfg = OptimalConfig { max_nodes: 1, probe_budget: 0 };
        let r = optimal_search(&l, &m, &part, ii + 10, &cfg);
        assert!(!r.outcome.is_proved());
        assert_eq!(r.outcome.best(), ii + 10);
    }

    #[test]
    fn all_ops_pinned_is_a_single_exact_probe() {
        // A loop with nothing movable: the tree is one leaf; the oracle
        // still certifies the scalar loop's exact minimum.
        let mut b = LoopBuilder::new("seq");
        let x = b.array("x", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let a = b.fadd(lx, lx);
        b.store(x, 1, 1, a); // distance-1 carried cycle pins everything
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let (part, ii) = incumbent(&l, &m);
        let r = optimal_search(&l, &m, &part, ii, &OptimalConfig::default());
        assert!(r.outcome.is_proved());
        assert!(r.outcome.best() <= ii);
    }
}
