//! End-to-end compilation pipeline: partition → transform → modulo
//! schedule, for all four techniques the paper compares.

use crate::driver::{compile_checked, CompileError, DriverConfig};
use crate::partition::{PartitionResult, SelectiveConfig};
use sv_ir::Loop;
use sv_machine::MachineConfig;
use sv_modsched::{RegisterAssignment, Schedule};
use std::fmt;

/// The parallelization technique applied before modulo scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Modulo scheduling of the loop exactly as written (Figure 1(c)).
    ModuloNoUnroll,
    /// The paper's evaluation baseline: unroll by the vector length (to
    /// amortize loop overhead and match vector memory addressing), then
    /// modulo schedule. No vector instructions.
    ModuloOnly,
    /// Traditional Allen–Kennedy vectorization: loop distribution with
    /// fusion and scalar expansion; every distributed loop is modulo
    /// scheduled.
    Traditional,
    /// Full vectorization: vectorize every legal operation, keep the loop
    /// intact, unroll the scalar remainder ops.
    Full,
    /// The paper's contribution: cost-driven selective vectorization.
    Selective,
    /// The paper's §6 future-work extension: a widened scheduling window
    /// of `vector_length + 1` iterations, vectorizing whole iterations
    /// with zero communication. Falls back to the unrolled baseline for
    /// loops the window cannot cover (any loop-carried dependence).
    Widened,
    /// The optimal-II oracle: certified-minimum selective vectorization.
    /// Runs the selective pipeline for an incumbent, then a complete
    /// branch-and-bound over every legal partition with an exact
    /// modulo-schedule probe ([`crate::optimal_search`]); delivers either
    /// the proved-optimal witness schedule or the (proved-optimal)
    /// incumbent. Degrades to [`Strategy::Selective`] when the search
    /// budget is exhausted before the proof closes.
    Optimal,
}

impl Strategy {
    /// All strategies in the paper's comparison order, plus the widened
    /// window extension and the optimal-II oracle.
    pub const ALL: [Strategy; 7] = [
        Strategy::ModuloNoUnroll,
        Strategy::ModuloOnly,
        Strategy::Traditional,
        Strategy::Full,
        Strategy::Selective,
        Strategy::Widened,
        Strategy::Optimal,
    ];

    /// The strategy's canonical machine-readable spelling — stable across
    /// releases, used in wire protocols and cache-key encodings (distinct
    /// from `Display`, which uses presentation forms like
    /// `modulo(no-unroll)`).
    pub fn canonical_name(self) -> &'static str {
        match self {
            Strategy::ModuloNoUnroll => "modulo-no-unroll",
            Strategy::ModuloOnly => "modulo",
            Strategy::Traditional => "traditional",
            Strategy::Full => "full",
            Strategy::Selective => "selective",
            Strategy::Widened => "widened",
            Strategy::Optimal => "optimal",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::ModuloNoUnroll => "modulo(no-unroll)",
            Strategy::ModuloOnly => "modulo",
            Strategy::Traditional => "traditional",
            Strategy::Full => "full",
            Strategy::Selective => "selective",
            Strategy::Widened => "widened",
            Strategy::Optimal => "optimal",
        };
        write!(f, "{s}")
    }
}

/// One scheduled loop plus its remainder handling.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The loop that executes the bulk iterations.
    pub looop: Loop,
    /// Its modulo schedule.
    pub schedule: Schedule,
    /// Rotating-register assignment for the schedule; `None` when a
    /// register file was too small (which
    /// [`Schedule::register_pressure_ok`] also flags).
    pub registers: Option<RegisterAssignment>,
    /// Scalar remainder loop and schedule, present when the segment covers
    /// more than one original iteration per loop iteration and the trip
    /// count may leave a remainder.
    pub cleanup: Option<(Loop, Schedule)>,
}

impl Segment {
    /// Cycles one invocation of this segment takes, by the standard
    /// software-pipeline timing model `(n + SC − 1) · II` plus the fixed
    /// loop-setup overhead, with the cleanup loop appended when the trip
    /// count leaves remainder iterations.
    pub fn cycles_per_invocation(&self, setup: u64) -> u64 {
        let n = self.looop.executed_iterations();
        let mut total = 0;
        if n > 0 {
            total += (n + u64::from(self.schedule.stage_count) - 1)
                * u64::from(self.schedule.ii)
                + setup;
        }
        let r = self.looop.remainder_iterations();
        if r > 0 {
            let (_, cs) = self
                .cleanup
                .as_ref()
                .expect("remainder iterations without a cleanup loop");
            total += (r + u64::from(cs.stage_count) - 1) * u64::from(cs.ii) + setup;
        }
        total
    }
}

/// A fully compiled loop: the segments executed per invocation, in order.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// The technique that produced this code.
    pub strategy: Strategy,
    /// The source loop.
    pub source: Loop,
    /// Scheduled segments in execution order.
    pub segments: Vec<Segment>,
    /// The partition the selective partitioner chose (selective only).
    pub partition: Option<PartitionResult>,
}

impl CompiledLoop {
    /// Kernel throughput in cycles per *original* iteration:
    /// `Σ II_s / iter_scale_s` over the segments — the number the paper's
    /// II comparisons (Figure 1, Table 3) use.
    pub fn ii_per_original_iteration(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| f64::from(s.schedule.ii) / f64::from(s.looop.iter_scale))
            .sum()
    }

    /// ResMII per original iteration, analogous to
    /// [`CompiledLoop::ii_per_original_iteration`].
    pub fn resmii_per_original_iteration(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| f64::from(s.schedule.resmii) / f64::from(s.looop.iter_scale))
            .sum()
    }

    /// Total cycles for the loop's whole program contribution
    /// (`invocations × per-invocation cycles`), using the machine's
    /// loop-setup overhead.
    pub fn total_cycles(&self, m: &MachineConfig) -> u64 {
        let per_invocation: u64 = self
            .segments
            .iter()
            .map(|s| s.cycles_per_invocation(m.loop_setup_cycles))
            .sum();
        self.source.invocations * per_invocation
    }
}

/// Compile `l` for machine `m` with the given strategy, using default
/// selective-vectorization settings.
///
/// A thin wrapper over [`compile_checked`] with a default
/// [`DriverConfig`]: boundary verification, budgets, graceful strategy
/// degradation and panic containment are all active; only the
/// [`crate::CompilationReport`] is discarded.
///
/// # Errors
///
/// Returns [`CompileError`] when the loop cannot be compiled by the
/// requested strategy or anything on its degradation ladder
/// (pathological inputs only).
pub fn compile(
    l: &Loop,
    m: &MachineConfig,
    strategy: Strategy,
) -> Result<CompiledLoop, CompileError> {
    compile_with(l, m, strategy, &SelectiveConfig::default())
}

/// [`compile`] with explicit selective-vectorization settings (Table 4's
/// communication ablation, the tie-break ablation, iteration caps).
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with(
    l: &Loop,
    m: &MachineConfig,
    strategy: Strategy,
    cfg: &SelectiveConfig,
) -> Result<CompiledLoop, CompileError> {
    let dcfg = DriverConfig {
        strategy,
        selective: cfg.clone(),
        ..DriverConfig::default()
    };
    compile_checked(l, m, &dcfg).map(|(compiled, _report)| compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    fn figure1_dot() -> Loop {
        let mut b = LoopBuilder::new("dot");
        b.trip(1000);
        let x = b.array("x", ScalarType::F64, 1024);
        let y = b.array("y", ScalarType::F64, 1024);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        b.finish()
    }

    #[test]
    fn figure1_all_four_iis() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let base = compile(&l, &m, Strategy::ModuloNoUnroll).unwrap();
        let trad = compile(&l, &m, Strategy::Traditional).unwrap();
        let full = compile(&l, &m, Strategy::Full).unwrap();
        let sel = compile(&l, &m, Strategy::Selective).unwrap();
        assert_eq!(base.ii_per_original_iteration(), 2.0);
        assert_eq!(trad.ii_per_original_iteration(), 3.0);
        assert_eq!(full.ii_per_original_iteration(), 1.5);
        assert_eq!(sel.ii_per_original_iteration(), 1.0);
    }

    #[test]
    fn cleanup_generated_for_unknown_trips() {
        let l = figure1_dot(); // runtime trip 1000
        let m = MachineConfig::figure1();
        let c = compile(&l, &m, Strategy::Selective).unwrap();
        assert!(c.segments[0].cleanup.is_some());
        // Known multiple-of-2 trips skip cleanup.
        let mut l2 = l.clone();
        l2.trip = sv_ir::TripCount::known(1000);
        let c2 = compile(&l2, &m, Strategy::Selective).unwrap();
        assert!(c2.segments[0].cleanup.is_none());
    }

    #[test]
    fn total_cycles_ordering_matches_ii() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let cycles: Vec<u64> = [
            Strategy::ModuloNoUnroll,
            Strategy::Traditional,
            Strategy::Full,
            Strategy::Selective,
        ]
        .iter()
        .map(|&s| compile(&l, &m, s).unwrap().total_cycles(&m))
        .collect();
        // selective < full < baseline < traditional at trip 1000.
        assert!(cycles[3] < cycles[2], "{cycles:?}");
        assert!(cycles[2] < cycles[0], "{cycles:?}");
        assert!(cycles[0] < cycles[1], "{cycles:?}");
    }

    #[test]
    fn selective_records_partition() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let c = compile(&l, &m, Strategy::Selective).unwrap();
        let p = c.partition.expect("partition recorded");
        assert_eq!(p.cost, 2);
    }

    #[test]
    fn low_trip_counts_penalize_deep_pipelines() {
        // The turb3d effect: with tiny trip counts the prologue/epilogue
        // dominates and a deeper pipeline with a smaller II can lose.
        let mut l = figure1_dot();
        l.trip = sv_ir::TripCount::runtime(4);
        let m = MachineConfig::figure1();
        let base = compile(&l, &m, Strategy::ModuloNoUnroll).unwrap();
        let sel = compile(&l, &m, Strategy::Selective).unwrap();
        let ratio = base.total_cycles(&m) as f64 / sel.total_cycles(&m) as f64;
        // Selective's kernel advantage (2×) must shrink below 2 at trip 4.
        assert!(ratio < 2.0, "ratio {ratio}");
    }
}
