//! The selective-vectorization partitioner (paper Figure 2).
//!
//! A Kernighan–Lin two-cluster heuristic divides the loop's operations
//! between a scalar and a vector partition, minimizing the
//! resource-constrained minimum initiation interval (the high-water mark of
//! the resource bins). Each scalar operation is binned `k` times to match
//! the work output of one `k`-wide vector operation; vector memory
//! operations charge merge-unit realignment when misaligned; and explicit
//! transfer instructions are charged for every operand whose producer and
//! consumers sit in different partitions (at most once per operand).
//!
//! The algorithm is iterative: every pass repositions each vectorizable
//! operation exactly once — even when a move temporarily increases the cost
//! — keeping the best configuration seen; passes repeat until one fails to
//! improve. Candidate moves are costed *incrementally* by releasing and
//! re-reserving only the affected resources against checkpointed bins; the
//! committed move is followed by a fresh bin-packing, exactly as the paper
//! describes.

use sv_analysis::{vectorizable_ops, DepGraph, VecStatus};
use sv_ir::{Loop, OpId, OpKind, VectorForm};
use sv_machine::{AlignmentPolicy, CommModel, MachineConfig, TransferDirection};
use sv_modsched::Bins;

/// Tuning knobs for the partitioner, mirroring the paper's ablations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectiveConfig {
    /// Charge explicit transfer operations during cost analysis (Table 4's
    /// "considered" column). When `false`, transfers are ignored by the
    /// partitioner but still inserted by the transformer, reproducing the
    /// paper's "ignored" ablation.
    pub account_communication: bool,
    /// Use the sum-of-squared-bin-weights tie-break when choosing resource
    /// alternatives and candidate moves (the balance optimization of §3.2).
    pub squares_tiebreak: bool,
    /// Cap on Kernighan–Lin passes (`None` = run to convergence; the paper
    /// notes a few passes suffice and the cap exists for compile-time
    /// control).
    pub max_iterations: Option<u32>,
    /// Hard deterministic budget on candidate-move probes across the whole
    /// partitioning call (`None` = unlimited). Exhausting it abandons the
    /// descent with the best configuration seen so far and flags
    /// [`PartitionResult::budget_exhausted`], which the compilation driver
    /// treats as grounds for strategy degradation.
    pub max_moves: Option<u64>,
    /// §6 extension: break cost ties toward the configuration with the
    /// lower static register-pressure estimate, spreading values across
    /// both register files ("selective vectorization can reduce spilling
    /// by using both sets of registers"). Off by default — the paper's
    /// algorithm ignores pressure.
    pub pressure_aware: bool,
}

impl Default for SelectiveConfig {
    fn default() -> SelectiveConfig {
        SelectiveConfig {
            account_communication: true,
            squares_tiebreak: true,
            max_iterations: None,
            max_moves: None,
            pressure_aware: false,
        }
    }
}

/// The partitioner's output.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// `true` = vector partition, per source operation.
    pub partition: Vec<bool>,
    /// Cost of the chosen configuration: the bin high-water mark, i.e. the
    /// estimated ResMII of the transformed loop (which covers
    /// `vector_length` original iterations).
    pub cost: u32,
    /// Kernighan–Lin passes executed.
    pub iterations: u32,
    /// Candidate moves costed (incremental probes).
    pub moves_evaluated: u64,
    /// Moves actually committed (an op flipped and locked).
    pub moves_committed: u64,
    /// Complete bin-packings performed (initial packs, post-commit packs
    /// and per-pass restarts — the probes are incremental and not
    /// counted here).
    pub bin_packs: u64,
    /// The [`SelectiveConfig::max_moves`] budget ran out before the
    /// descent converged; the partition is the best seen, not a local
    /// minimum.
    pub budget_exhausted: bool,
}

/// Everything the cost model bills for one operation in one partition.
struct CostModel<'a> {
    l: &'a Loop,
    m: &'a MachineConfig,
    cfg: &'a SelectiveConfig,
    k: u32,
    /// Register-dataflow consumers of each op (excluding self-loops).
    consumers: Vec<Vec<OpId>>,
    /// Distinct producers of each op's operands (excluding self).
    producers: Vec<Vec<OpId>>,
    /// Cached reservation lists, one probe allocation saved per use:
    /// the scalar opcode's requirements per op…
    scalar_reqs: Vec<Vec<sv_machine::Reservation>>,
    /// …the vector opcode's (with the realignment merge appended when the
    /// op is a misaligned memory reference)…
    vector_reqs: Vec<Vec<sv_machine::Reservation>>,
    /// …and the transfer sequences per op value and direction
    /// (`[scalar→vector, vector→scalar]`).
    comm_reqs: Vec<[Vec<sv_machine::Reservation>; 2]>,
    /// Bin-packing order: most-constrained opcodes first, fixed up front
    /// (partition flips barely move the ordering).
    pack_order: Vec<usize>,
}

impl<'a> CostModel<'a> {
    fn new(
        l: &'a Loop,
        g: &'a DepGraph,
        m: &'a MachineConfig,
        cfg: &'a SelectiveConfig,
    ) -> CostModel<'a> {
        let n = l.ops.len();
        let mut consumers = vec![Vec::new(); n];
        let mut producers = vec![Vec::new(); n];
        for e in g.edges() {
            if e.is_mem || e.src == e.dst {
                continue;
            }
            if !consumers[e.src.index()].contains(&e.dst) {
                consumers[e.src.index()].push(e.dst);
            }
            if !producers[e.dst.index()].contains(&e.src) {
                producers[e.dst.index()].push(e.src);
            }
        }
        let pool = m.resource_pool();
        let scalar_reqs: Vec<_> = l.ops.iter().map(|o| m.requirements(o.opcode)).collect();
        let vector_reqs: Vec<_> = l
            .ops
            .iter()
            .map(|o| {
                let vopc = o.opcode.with_form(VectorForm::Vector);
                let mut reqs = m.requirements(vopc);
                if o.opcode.kind.is_mem() && op_misaligned(l, m, o) {
                    reqs.extend(
                        m.requirements(sv_ir::Opcode::vector(OpKind::Merge, o.opcode.ty)),
                    );
                }
                reqs
            })
            .collect();
        let comm_reqs: Vec<[Vec<sv_machine::Reservation>; 2]> = l
            .ops
            .iter()
            .map(|o| {
                let seq = |dir| -> Vec<sv_machine::Reservation> {
                    m.comm
                        .transfer_opcodes(dir, o.opcode.ty, m.vector_length)
                        .iter()
                        .flat_map(|opc| m.requirements(*opc))
                        .collect()
                };
                [
                    seq(TransferDirection::ScalarToVector),
                    seq(TransferDirection::VectorToScalar),
                ]
            })
            .collect();
        let mut pack_order: Vec<usize> = (0..n).collect();
        pack_order.sort_by_key(|&i| (m.alternatives_count_in(&pool, l.ops[i].opcode), i));
        CostModel {
            l,
            m,
            cfg,
            k: m.vector_length,
            consumers,
            producers,
            scalar_reqs,
            vector_reqs,
            comm_reqs,
            pack_order,
        }
    }

    /// Reserve the op's own execution resources (lines 38–45 of Figure 2):
    /// `k` scalar issues, or one vector issue plus realignment merges.
    fn reserve_own(&self, bins: &mut Bins, i: usize, vector: bool) -> sv_modsched::Placement {
        let mut placement = sv_modsched::Placement::default();
        if vector {
            merge_into(&mut placement, bins.reserve(&self.vector_reqs[i]));
        } else {
            for _ in 0..self.k {
                merge_into(&mut placement, bins.reserve(&self.scalar_reqs[i]));
            }
        }
        placement
    }

    /// Reserve the transfer instructions for op `i`'s *value* under the
    /// given partition assignment (lines 46–48): nothing when the op's
    /// value stays within its partition, otherwise the through-memory
    /// store/load sequence, charged once regardless of consumer count.
    fn reserve_comm(&self, bins: &mut Bins, i: usize, part: &[bool]) -> sv_modsched::Placement {
        let mut placement = sv_modsched::Placement::default();
        if !self.cfg.account_communication || self.m.comm != CommModel::ThroughMemory {
            return placement;
        }
        let op = &self.l.ops[i];
        if !op.defines_value() {
            return placement;
        }
        let produces_vector = part[i];
        let needs = self.consumers[i]
            .iter()
            .any(|c| part[c.index()] != produces_vector);
        if !needs {
            return placement;
        }
        let reqs = &self.comm_reqs[i][if produces_vector { 1 } else { 0 }];
        for r in reqs {
            merge_into(&mut placement, bins.reserve(std::slice::from_ref(r)));
        }
        placement
    }
}

fn merge_into(into: &mut sv_modsched::Placement, from: sv_modsched::Placement) {
    into.extend(from);
}

/// Whether the vector form of a memory operation would need realignment
/// merges under the machine's active alignment policy — the single
/// definition shared by the cost model, the legality screen and the
/// optimal-II oracle's lower bounds.
pub(crate) fn op_misaligned(l: &Loop, m: &MachineConfig, op: &sv_ir::Operation) -> bool {
    let Some(r) = &op.mem else { return false };
    match m.alignment {
        AlignmentPolicy::AssumeAligned => false,
        AlignmentPolicy::AssumeMisaligned => true,
        AlignmentPolicy::UseStatic => {
            let a = &l.arrays[r.array.0 as usize];
            let vec_bytes = u64::from(m.vector_length) * a.ty.size_bytes();
            !(a.base_align.is_multiple_of(vec_bytes)
                && r.offset.rem_euclid(i64::from(m.vector_length)) == 0)
        }
    }
}

/// Static register-pressure imbalance estimate for a configuration: the
/// summed overflow of value counts past each register file, where a
/// scalar op holds `k` values (one per lane) in its scalar file and a
/// vector op holds one value in its (smaller) vector file. Coarse by
/// design — it only has to *order* configurations, the scheduler's
/// MaxLive does the real check.
fn pressure_overflow(model: &CostModel<'_>, part: &[bool]) -> u64 {
    use sv_ir::RegClass;
    let mut counts = [0u64; 4];
    for (i, op) in model.l.ops.iter().enumerate() {
        if !op.defines_value() {
            continue;
        }
        let class = if part[i] {
            RegClass::of(op.opcode.ty, true)
        } else {
            RegClass::of(op.opcode.ty, false)
        };
        let slot = RegClass::ALL.iter().position(|&c| c == class).expect("indexed");
        counts[slot] += if part[i] { 1 } else { u64::from(model.k) };
    }
    RegClass::ALL
        .iter()
        .enumerate()
        .map(|(slot, &c)| counts[slot].saturating_sub(u64::from(model.m.regs.size(c))))
        .sum()
}

/// Complete bin-packing of a configuration (Figure 2, BIN-PACK): loop
/// overhead first, then every operation in most-constrained-first order,
/// then the required transfers. Returns the bins and per-op placements.
struct Packed {
    bins: Bins,
    own: Vec<sv_modsched::Placement>,
    comm: Vec<sv_modsched::Placement>,
}

fn bin_pack(model: &CostModel<'_>, part: &[bool]) -> Packed {
    let mut bins = Bins::new(model.m.resource_pool());
    for reqs in model.m.loop_overhead() {
        bins.reserve(&reqs);
    }
    let n = model.l.ops.len();
    let mut own = vec![sv_modsched::Placement::default(); n];
    let mut comm = vec![sv_modsched::Placement::default(); n];
    for &i in &model.pack_order {
        own[i] = model.reserve_own(&mut bins, i, part[i]);
    }
    for (i, c) in comm.iter_mut().enumerate() {
        *c = model.reserve_comm(&mut bins, i, part);
    }
    Packed { bins, own, comm }
}

/// Run the partitioner on `l` for machine `m`.
///
/// Operations that are not legally vectorizable (per `sv-analysis`) are
/// pinned to the scalar partition. When the machine has no vector units or
/// free communication turns into through-memory chaos, the all-scalar
/// configuration remains a valid answer — the algorithm never returns a
/// configuration worse than it.
///
/// ```
/// use sv_analysis::DepGraph;
/// use sv_core::{partition_ops, SelectiveConfig};
/// use sv_ir::{LoopBuilder, ScalarType};
/// use sv_machine::MachineConfig;
///
/// // The paper's Figure 1 dot product on the Figure 1 machine.
/// let mut b = LoopBuilder::new("dot");
/// let x = b.array("x", ScalarType::F64, 64);
/// let y = b.array("y", ScalarType::F64, 64);
/// let lx = b.load(x, 1, 0);
/// let ly = b.load(y, 1, 0);
/// let mu = b.fmul(lx, ly);
/// b.reduce_add(mu);
/// let l = b.finish();
///
/// let m = MachineConfig::figure1();
/// let g = DepGraph::build(&l);
/// let r = partition_ops(&l, &g, &m, &SelectiveConfig::default());
/// assert_eq!(r.cost, 2); // II 1.0 per original iteration — Figure 1(f)
/// ```
pub fn partition_ops(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
) -> PartitionResult {
    let statuses = vectorizable_ops(l, g, m.vector_length);
    partition_ops_with_legality(l, g, m, cfg, &statuses)
}

/// Which operations may be assigned to the vector partition: legally
/// vectorizable AND executable by this machine's vector resources.
///
/// An op is movable when the machine can actually execute its vector form
/// (and the realignment merge it would need): a machine without vector or
/// merge units pins everything scalar instead of panicking in the bin
/// packer. Merge capacity is only demanded when the op can actually be
/// misaligned under the active alignment policy — a merge-less machine
/// with `AssumeAligned` (or statically aligned refs) still vectorizes its
/// memory operations. Shared by the KL partitioner and the optimal-II
/// oracle so both search the same assignment space.
pub(crate) fn movable_ops(
    l: &Loop,
    m: &MachineConfig,
    statuses: &[VecStatus],
) -> Vec<bool> {
    let pool = m.resource_pool();
    let machine_supports = |i: usize| -> bool {
        let op = &l.ops[i];
        let vopc = op.opcode.with_form(VectorForm::Vector);
        let mut reqs = m.requirements(vopc);
        if op.opcode.kind.is_mem() && op_misaligned(l, m, op) {
            reqs.extend(m.requirements(sv_ir::Opcode::vector(OpKind::Merge, op.opcode.ty)));
        }
        reqs.iter().all(|r| pool.capacity(r.class) > 0)
    };
    statuses
        .iter()
        .enumerate()
        .map(|(i, s)| s.is_vectorizable() && machine_supports(i))
        .collect()
}

/// [`partition_ops`] with a precomputed legality vector.
pub fn partition_ops_with_legality(
    l: &Loop,
    g: &DepGraph,
    m: &MachineConfig,
    cfg: &SelectiveConfig,
    statuses: &[VecStatus],
) -> PartitionResult {
    let movable = movable_ops(l, m, statuses);
    let model = CostModel::new(l, g, m, cfg);

    // Kernighan–Lin is a local search; seed it from both extremes — the
    // paper's all-scalar start and the legal all-vector (full) partition —
    // and keep the cheaper result. The second start removes the rare local
    // minimum where full vectorization would beat the all-scalar descent.
    let scalar_start = vec![false; l.ops.len()];
    let mut best = kl_descend(&model, cfg, &movable, scalar_start, cfg.max_moves);
    if movable.iter().any(|&v| v) {
        // The second descent spends whatever the first left of the budget.
        let remaining = cfg.max_moves.map(|cap| cap.saturating_sub(best.moves_evaluated));
        let full_start = movable.clone();
        let alt = kl_descend(&model, cfg, &movable, full_start, remaining);
        let budget_exhausted = best.budget_exhausted || alt.budget_exhausted;
        let iterations = best.iterations + alt.iterations;
        let moves_evaluated = best.moves_evaluated + alt.moves_evaluated;
        let moves_committed = best.moves_committed + alt.moves_committed;
        let bin_packs = best.bin_packs + alt.bin_packs;
        let winner = if (alt.cost, alt.partition.iter().filter(|&&v| v).count())
            < (best.cost, best.partition.iter().filter(|&&v| v).count())
        {
            alt
        } else {
            best
        };
        best = PartitionResult {
            iterations,
            moves_evaluated,
            moves_committed,
            bin_packs,
            budget_exhausted,
            ..winner
        };
    }
    best
}

/// One full Kernighan–Lin descent (Figure 2 lines 1–20) from `start`,
/// probing at most `move_cap` candidate moves.
fn kl_descend(
    model: &CostModel<'_>,
    cfg: &SelectiveConfig,
    movable: &[bool],
    start: Vec<bool>,
    move_cap: Option<u64>,
) -> PartitionResult {
    let n = movable.len();
    let mut moves_evaluated = 0u64;
    let mut moves_committed = 0u64;
    let mut bin_packs = 1u64;
    let mut budget_exhausted = false;
    let mut part = start;
    let mut packed = bin_pack(model, &part);
    let mut best_part = part.clone();
    let mut best_cost = packed.bins.high_water_mark();

    let mut iterations = 0u32;
    let mut last_cost = u32::MAX;
    'passes: while last_cost != best_cost {
        if let Some(cap) = cfg.max_iterations {
            if iterations >= cap {
                break;
            }
        }
        last_cost = best_cost;
        iterations += 1;
        let mut locked = vec![false; n];

        // Lines 10–18: reposition every movable op exactly once.
        let movable_count = movable.iter().filter(|&&v| v).count();
        for _ in 0..movable_count {
            // FIND-OP-TO-SWITCH: probe each unlocked candidate.
            let mut best_probe: Option<((u32, u64, u64), usize)> = None;
            for i in 0..n {
                if !movable[i] || locked[i] {
                    continue;
                }
                if move_cap.is_some_and(|cap| moves_evaluated >= cap) {
                    budget_exhausted = true;
                    break 'passes;
                }
                moves_evaluated += 1;
                let cost = probe_switch(model, &mut packed, &mut part, i);
                let pressure = if cfg.pressure_aware {
                    part[i] = !part[i];
                    let p = pressure_overflow(model, &part);
                    part[i] = !part[i];
                    p
                } else {
                    0
                };
                let key = if cfg.squares_tiebreak {
                    (cost.0, pressure, cost.1)
                } else {
                    (cost.0, pressure, 0)
                };
                if best_probe.is_none_or(|(bc, bi)| key < bc || (key == bc && i < bi)) {
                    best_probe = Some((key, i));
                }
            }
            let Some((_, op)) = best_probe else { break };

            // SWITCH-OP + fresh BIN-PACK (lines 12–14).
            part[op] = !part[op];
            locked[op] = true;
            moves_committed += 1;
            bin_packs += 1;
            packed = bin_pack(model, &part);
            let cost = packed.bins.high_water_mark();
            if cost < best_cost {
                best_cost = cost;
                best_part = part.clone();
            }
        }

        // Line 19: restart from the best configuration.
        part = best_part.clone();
        bin_packs += 1;
        packed = bin_pack(model, &part);
    }

    PartitionResult {
        partition: best_part,
        cost: best_cost,
        iterations,
        moves_evaluated,
        moves_committed,
        bin_packs,
        budget_exhausted,
    }
}

/// TEST-REPARTITION (lines 29–32): checkpoint the bins, release the op's
/// own resources plus the transfers of its value and its producers'
/// values, flip, re-reserve, read the cost, and restore.
fn probe_switch(
    model: &CostModel<'_>,
    packed: &mut Packed,
    part: &mut [bool],
    i: usize,
) -> (u32, u64) {
    let checkpoint = packed.bins.checkpoint();

    packed.bins.release(&packed.own[i]);
    packed.bins.release(&packed.comm[i]);
    for p in &model.producers[i] {
        packed.bins.release(&packed.comm[p.index()]);
    }

    part[i] = !part[i];
    let _ = model.reserve_own(&mut packed.bins, i, part[i]);
    let _ = model.reserve_comm(&mut packed.bins, i, part);
    for p in &model.producers[i] {
        let _ = model.reserve_comm(&mut packed.bins, p.index(), part);
    }
    let cost = (packed.bins.high_water_mark(), packed.bins.sum_squares());
    part[i] = !part[i];
    packed.bins.restore(&checkpoint);
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    fn run(l: &Loop, m: &MachineConfig) -> PartitionResult {
        let g = DepGraph::build(l);
        partition_ops(l, &g, m, &SelectiveConfig::default())
    }

    fn figure1_dot() -> Loop {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", ScalarType::F64, 64);
        let y = b.array("y", ScalarType::F64, 64);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        b.finish()
    }

    #[test]
    fn figure1_reaches_cost_two() {
        // The paper's headline example: II = 1.0 per original iteration,
        // i.e. bin high-water mark 2 for the 2-wide transformed loop.
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let r = run(&l, &m);
        assert_eq!(r.cost, 2, "partition: {:?}", r.partition);
        // The reduction must stay scalar.
        assert!(!r.partition[3]);
        // Exactly one load and the multiply are vectorized (cost 2 needs
        // 6 issue slots over 2 rows and ≤ 2 vector ops).
        let vec_count = r.partition.iter().filter(|&&v| v).count();
        assert_eq!(vec_count, 2, "partition: {:?}", r.partition);
        assert!(r.partition[2], "the multiply should vectorize");
    }

    #[test]
    fn never_worse_than_all_scalar() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let g = DepGraph::build(&l);
        let model_cfg = SelectiveConfig::default();
        let r = partition_ops(&l, &g, &m, &model_cfg);
        let all_scalar = bin_pack(
            &CostModel::new(&l, &g, &m, &model_cfg),
            &vec![false; l.ops.len()],
        );
        assert!(r.cost <= all_scalar.bins.high_water_mark());
    }

    #[test]
    fn non_vectorizable_ops_stay_scalar() {
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", ScalarType::F64, 64);
        let la = b.load(a, 1, 0);
        let n = b.fneg(la);
        b.store(a, 1, 1, n); // distance-1 recurrence: nothing vectorizable
        let l = b.finish();
        let r = run(&l, &MachineConfig::paper_default());
        assert!(r.partition.iter().all(|&v| !v));
    }

    #[test]
    fn expensive_communication_inhibits_vectorization() {
        // A single chain load→neg→store on the paper machine: vectorizing
        // everything is profitable; but if only the neg could vectorize,
        // the transfers would cost more than the gain. Construct that by
        // making the loads/stores non-unit-stride.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 256);
        let y = b.array("y", ScalarType::F64, 256);
        let lx = b.load(x, 2, 0);
        let n = b.fneg(lx);
        b.store(y, 2, 0, n);
        let l = b.finish();
        let r = run(&l, &MachineConfig::paper_default());
        // Vectorizing the neg alone needs 2 stores + vload + vstore + 2
        // loads on the memory units — strictly worse. Must stay scalar.
        assert!(!r.partition[n.index()], "cost {}", r.cost);
    }

    #[test]
    fn mem_bound_loop_offloads_to_vector_units() {
        // Heavy fp arithmetic on 2 fp units: vector unit takes some load.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", ScalarType::F64, 256);
        let y = b.array("y", ScalarType::F64, 256);
        let lx = b.load(x, 1, 0);
        let mut v = lx;
        for _ in 0..6 {
            v = b.fmul(v, lx);
        }
        b.store(y, 1, 0, v);
        let l = b.finish();
        let m = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let r = partition_ops(&l, &g, &m, &SelectiveConfig::default());
        let scalar_cost =
            bin_pack(&CostModel::new(&l, &g, &m, &SelectiveConfig::default()), &vec![
                false;
                l.ops.len()
            ])
            .bins
            .high_water_mark();
        assert!(
            r.cost < scalar_cost,
            "selective ({}) should beat all-scalar ({})",
            r.cost,
            scalar_cost
        );
        assert!(r.partition.iter().any(|&v| v));
    }

    #[test]
    fn mergeless_machine_vectorizes_aligned_memory() {
        // Regression: machine_supports used to charge vector-Merge
        // capability for *every* memory op, so a machine with vector
        // units but no merge unit pinned all loads/stores scalar even
        // under AssumeAligned, where the transformer never emits a
        // merge. Mem-bound loop: 5 memory ops on 2 memory units.
        let mut b = LoopBuilder::new("memsum");
        let x = b.array("x", ScalarType::F64, 256);
        let y = b.array("y", ScalarType::F64, 256);
        let z = b.array("z", ScalarType::F64, 256);
        let w = b.array("w", ScalarType::F64, 256);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let lz = b.load(z, 1, 0);
        let lw = b.load(w, 1, 0);
        let s1 = b.fadd(lx, ly);
        let s2 = b.fadd(lz, lw);
        let s3 = b.fadd(s1, s2);
        b.store(x, 1, 0, s3);
        let l = b.finish();

        let mut m = MachineConfig::paper_default();
        m.merge_units = 0;
        m.alignment = AlignmentPolicy::AssumeAligned;
        let r = run(&l, &m);
        let vectorized_mem = l
            .ops
            .iter()
            .enumerate()
            .filter(|(i, op)| op.opcode.kind.is_mem() && r.partition[*i])
            .count();
        assert!(
            vectorized_mem > 0,
            "no memory op vectorized on the merge-less aligned machine: {:?} (cost {})",
            r.partition,
            r.cost
        );

        // The guard the old over-restriction was protecting still holds:
        // when merges *are* required (assume-misaligned) and there is no
        // merge unit, memory ops must stay scalar.
        let mut mm = MachineConfig::paper_default();
        mm.merge_units = 0;
        mm.alignment = sv_machine::AlignmentPolicy::AssumeMisaligned;
        let rm = run(&l, &mm);
        for (i, op) in l.ops.iter().enumerate() {
            if op.opcode.kind.is_mem() {
                assert!(
                    !rm.partition[i],
                    "memory op {i} vectorized without a merge unit under AssumeMisaligned"
                );
            }
        }
    }

    #[test]
    fn iteration_count_is_small() {
        let l = figure1_dot();
        let r = run(&l, &MachineConfig::figure1());
        assert!(r.iterations <= 4, "iterations = {}", r.iterations);
    }

    #[test]
    fn max_iterations_caps_work() {
        let l = figure1_dot();
        let g = DepGraph::build(&l);
        let cfg = SelectiveConfig { max_iterations: Some(1), ..Default::default() };
        let r = partition_ops(&l, &g, &MachineConfig::figure1(), &cfg);
        // One pass per start (all-scalar and all-vector seeds).
        assert!(r.iterations <= 2, "iterations = {}", r.iterations);
    }
}
