//! The hardened compilation driver.
//!
//! [`compile_checked`] runs the partition → transform → modulo-schedule
//! pipeline with every internal failure mode surfaced as a typed
//! [`CompileError`] carrying pass provenance (which pass, which loop, a
//! re-parseable dump of the offending artifact) instead of an unwind:
//!
//! * the IR verifier runs on the input and, when
//!   [`DriverConfig::verify_boundaries`] is set, on every transformed loop
//!   at the pass boundary that produced it;
//! * every modulo schedule is structurally validated (dependences,
//!   resource occupancy, assignment coverage) before it is accepted;
//! * the Kernighan–Lin partitioner and the scheduler's II search run under
//!   deterministic step budgets ([`SelectiveConfig::max_moves`],
//!   [`ScheduleConfig`]);
//! * on budget exhaustion or pass failure the driver degrades gracefully —
//!   Selective → Full → Traditional → ModuloOnly — recording each
//!   [`Fallback`] and its reason in the [`CompilationReport`];
//! * any residual panic in a pass is contained with `catch_unwind` and
//!   reported as [`CompileError::Internal`].
//!
//! The historical [`crate::compile`] / [`crate::compile_with`] entry
//! points are thin wrappers over this driver with default settings.

use crate::optimal::{optimal_search, OptimalConfig};
use crate::partition::{partition_ops, PartitionResult, SelectiveConfig};
use crate::pipeline::{CompiledLoop, Segment, Strategy};
use sv_analysis::OptimalOutcome;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use sv_analysis::DepGraph;
use sv_ir::{Loop, VerifyError};
use sv_machine::MachineConfig;
use sv_modsched::{
    allocate_rotating, modulo_schedule_with, validate_schedule, Schedule, ScheduleConfig,
    ScheduleError, ValidationError,
};
use sv_vectorize::{
    full_vectorization_partition, try_traditional_vectorize, try_transform,
    try_widened_window_transform, TransformError,
};

/// The pipeline pass a [`CompileError`] originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Input verification, before any pass ran.
    Input,
    /// The Kernighan–Lin selective partitioner.
    Partition,
    /// A vectorizing loop transformation.
    Transform,
    /// The iterative modulo scheduler.
    Schedule,
    /// The optimal-II oracle's branch-and-bound search.
    Search,
    /// Pass-boundary verification/validation of a produced artifact.
    Boundary,
    /// Post-compilation executed verification (the cycle-accurate
    /// executor in `sv-sim` running the emitted layout).
    Execute,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pass::Input => "input",
            Pass::Partition => "partition",
            Pass::Transform => "transform",
            Pass::Schedule => "schedule",
            Pass::Search => "search",
            Pass::Boundary => "boundary",
            Pass::Execute => "execute",
        };
        write!(f, "{s}")
    }
}

/// A typed compilation failure with pass provenance.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The source loop failed IR verification before compilation started.
    InvalidInput {
        /// Loop name.
        looop: String,
        /// The verifier's complaint.
        error: VerifyError,
        /// `Display` dump of the loop (re-parseable).
        dump: String,
    },
    /// A vectorizing transformation rejected its input or emitted an
    /// invalid loop.
    Transform {
        /// The strategy being attempted.
        strategy: Strategy,
        /// Loop name.
        looop: String,
        /// The transformation's diagnosis (carries its own dump when the
        /// output was invalid).
        error: TransformError,
    },
    /// The modulo scheduler exhausted its II search window.
    Schedule {
        /// The strategy being attempted.
        strategy: Strategy,
        /// The loop (segment) that would not schedule.
        looop: String,
        /// The scheduler's diagnosis.
        error: ScheduleError,
    },
    /// A deterministic step budget ran out before a pass converged.
    BudgetExhausted {
        /// The strategy being attempted.
        strategy: Strategy,
        /// The pass whose budget ran out.
        pass: Pass,
        /// Loop name.
        looop: String,
        /// Human-readable accounting (what budget, how much was spent).
        detail: String,
    },
    /// A pass produced a loop the IR verifier rejects — caught at the
    /// pass boundary.
    BoundaryVerify {
        /// The strategy being attempted.
        strategy: Strategy,
        /// The pass that produced the artifact.
        pass: Pass,
        /// Loop name.
        looop: String,
        /// The verifier's complaint.
        error: VerifyError,
        /// `Display` dump of the rejected loop (re-parseable).
        dump: String,
    },
    /// A schedule failed structural validation (dependence latencies,
    /// resource occupancy, assignment coverage) at the pass boundary.
    BoundaryValidate {
        /// The strategy being attempted.
        strategy: Strategy,
        /// The loop whose schedule is defective.
        looop: String,
        /// The validator's complaint.
        error: ValidationError,
        /// `Display` dump of the scheduled loop (re-parseable).
        dump: String,
    },
    /// A compiled plan failed **executed** verification: the
    /// cycle-accurate executor (in `sv-sim`) found the emitted layout's
    /// final state diverging from the reference engine, or the measured
    /// steady-state cycles/iteration above the scheduled II.
    Execution {
        /// The strategy that produced the failing plan.
        strategy: Strategy,
        /// Loop name.
        looop: String,
        /// What the executor measured or found.
        detail: String,
    },
    /// A pass panicked; the unwind was contained and its payload
    /// preserved.
    Internal {
        /// The strategy being attempted.
        strategy: Strategy,
        /// Loop name.
        looop: String,
        /// The panic payload, if it was a string.
        payload: String,
        /// `Display` dump of the input loop (re-parseable).
        dump: String,
    },
}

impl CompileError {
    /// The pass the error originated in.
    pub fn pass(&self) -> Pass {
        match self {
            CompileError::InvalidInput { .. } => Pass::Input,
            CompileError::Transform { .. } => Pass::Transform,
            CompileError::Schedule { .. } => Pass::Schedule,
            CompileError::BudgetExhausted { pass, .. } => *pass,
            CompileError::BoundaryVerify { .. } | CompileError::BoundaryValidate { .. } => {
                Pass::Boundary
            }
            CompileError::Execution { .. } => Pass::Execute,
            CompileError::Internal { .. } => Pass::Boundary,
        }
    }

    /// The name of the loop the error is about.
    pub fn loop_name(&self) -> &str {
        match self {
            CompileError::InvalidInput { looop, .. }
            | CompileError::Transform { looop, .. }
            | CompileError::Schedule { looop, .. }
            | CompileError::BudgetExhausted { looop, .. }
            | CompileError::BoundaryVerify { looop, .. }
            | CompileError::BoundaryValidate { looop, .. }
            | CompileError::Execution { looop, .. }
            | CompileError::Internal { looop, .. } => looop,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidInput { looop, error, dump } => {
                write!(f, "invalid input loop `{looop}`: {error}\n{dump}")
            }
            CompileError::Transform { strategy, looop, error } => {
                write!(f, "[{strategy}/transform] `{looop}`: {error}")
            }
            CompileError::Schedule { strategy, looop, error } => {
                write!(f, "[{strategy}/schedule] failed to compile `{looop}`: {error}")
            }
            CompileError::BudgetExhausted { strategy, pass, looop, detail } => {
                write!(f, "[{strategy}/{pass}] `{looop}`: budget exhausted: {detail}")
            }
            CompileError::BoundaryVerify { strategy, pass, looop, error, dump } => write!(
                f,
                "[{strategy}/{pass}] `{looop}` failed boundary verification: {error}\n{dump}"
            ),
            CompileError::BoundaryValidate { strategy, looop, error, dump } => write!(
                f,
                "[{strategy}/schedule] `{looop}` schedule failed validation: {error}\n{dump}"
            ),
            CompileError::Execution { strategy, looop, detail } => {
                write!(f, "[{strategy}/execute] `{looop}` failed executed verification: {detail}")
            }
            CompileError::Internal { strategy, looop, payload, dump } => {
                write!(f, "[{strategy}] internal error compiling `{looop}`: {payload}\n{dump}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Settings for the hardened driver.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// The technique to attempt first.
    pub strategy: Strategy,
    /// Selective-partitioner settings, including its move budget.
    pub selective: SelectiveConfig,
    /// Modulo-scheduler budgets (per-II operation budget, II slack).
    pub schedule: ScheduleConfig,
    /// Re-verify every transformed loop and validate every schedule at
    /// the pass boundary that produced it.
    pub verify_boundaries: bool,
    /// Degrade Selective → Full → Traditional → ModuloOnly (and
    /// Widened → ModuloOnly) when an attempt fails, instead of returning
    /// its error.
    pub degrade: bool,
    /// Contain panics escaping a pass and report them as
    /// [`CompileError::Internal`].
    pub catch_panics: bool,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            strategy: Strategy::Selective,
            selective: SelectiveConfig::default(),
            schedule: ScheduleConfig::default(),
            verify_boundaries: true,
            degrade: true,
            catch_panics: true,
        }
    }
}

impl DriverConfig {
    /// A config attempting `strategy` first, defaults elsewhere.
    pub fn for_strategy(strategy: Strategy) -> DriverConfig {
        DriverConfig { strategy, ..DriverConfig::default() }
    }

    /// A canonical `key = value` encoding of every knob, in fixed order —
    /// the configuration's contribution to content-addressed cache keys.
    /// Unlike a `Debug` fingerprint, it is stable under derive churn
    /// (reordering, renaming or reformatting a `Debug` impl cannot
    /// silently invalidate every cached result); any *behavioural* knob
    /// added later must be appended here, and the cache schema tag bumped.
    pub fn canonical_encoding(&self) -> String {
        let opt = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "none".into(),
        };
        format!(
            "strategy = {}\n\
             selective.account_communication = {}\n\
             selective.squares_tiebreak = {}\n\
             selective.max_iterations = {}\n\
             selective.max_moves = {}\n\
             selective.pressure_aware = {}\n\
             schedule.budget_ratio = {}\n\
             schedule.max_ii_slack = {}\n\
             verify_boundaries = {}\n\
             degrade = {}\n\
             catch_panics = {}\n",
            self.strategy.canonical_name(),
            self.selective.account_communication,
            self.selective.squares_tiebreak,
            opt(self.selective.max_iterations.map(u64::from)),
            opt(self.selective.max_moves),
            self.selective.pressure_aware,
            self.schedule.budget_ratio,
            self.schedule.max_ii_slack,
            self.verify_boundaries,
            self.degrade,
            self.catch_panics,
        )
    }
}

/// One graceful degradation step the driver took.
#[derive(Debug, Clone)]
pub struct Fallback {
    /// The strategy abandoned.
    pub from: Strategy,
    /// The strategy tried next.
    pub to: Strategy,
    /// Why `from` was abandoned.
    pub reason: CompileError,
}

impl fmt::Display for Fallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.reason)
    }
}

/// Pass-level statistics collected while producing the delivered code:
/// wall time per pass, the Kernighan–Lin partitioner's search effort, the
/// modulo scheduler's II search trace, and the register-pressure
/// high-water marks. Carried on every [`CompilationReport`] and dumped as
/// one JSON line per compilation by
/// [`CompilationReport::stats_json_line`] for perf-trajectory tracking.
///
/// Counters are exact and deterministic; the `*_ns` wall times are, of
/// course, whatever the clock said.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Wall time in the Kernighan–Lin partitioner (nanoseconds).
    pub partition_ns: u64,
    /// Wall time in the vectorizing loop transformation (nanoseconds).
    pub transform_ns: u64,
    /// Wall time in modulo scheduling, schedule validation and rotating
    /// register allocation (nanoseconds).
    pub schedule_ns: u64,
    /// Wall time of the whole delivered attempt (nanoseconds).
    pub total_ns: u64,
    /// Kernighan–Lin passes executed.
    pub kl_passes: u32,
    /// Candidate-move probes costed incrementally by the partitioner.
    pub kl_probes: u64,
    /// Moves the partitioner committed (op flipped and locked).
    pub kl_moves: u64,
    /// Complete bin-packings the partitioner performed.
    pub bin_packs: u64,
    /// Modulo schedules produced (main loops + cleanup loops).
    pub schedules: u32,
    /// Every II value the scheduler attempted, across all schedules, in
    /// order — the length is the total II search effort.
    pub iis_tried: Vec<u32>,
    /// Element-wise maximum MaxLive over all produced schedules, per
    /// register class in `RegClass::ALL` order.
    pub max_live: [u32; 4],
    /// Wall time in the optimal-II oracle's branch-and-bound search
    /// (nanoseconds; zero for every strategy but `optimal`).
    pub search_ns: u64,
    /// Branch-and-bound nodes the oracle expanded.
    pub search_nodes: u64,
    /// Exact-scheduler probe budget the oracle spent.
    pub search_probe: u64,
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |ns: u64| ns as f64 / 1.0e6;
        writeln!(
            f,
            "partition {:>8.3} ms  (KL passes {}, probes {}, moves {}, bin-packs {})",
            ms(self.partition_ns),
            self.kl_passes,
            self.kl_probes,
            self.kl_moves,
            self.bin_packs
        )?;
        if self.search_ns > 0 || self.search_nodes > 0 {
            writeln!(
                f,
                "search    {:>8.3} ms  ({} nodes, {} probe units)",
                ms(self.search_ns),
                self.search_nodes,
                self.search_probe
            )?;
        }
        writeln!(f, "transform {:>8.3} ms", ms(self.transform_ns))?;
        writeln!(
            f,
            "schedule  {:>8.3} ms  ({} schedules, IIs tried {:?}, max-live {}/{}/{}/{})",
            ms(self.schedule_ns),
            self.schedules,
            self.iis_tried,
            self.max_live[0],
            self.max_live[1],
            self.max_live[2],
            self.max_live[3]
        )?;
        write!(f, "total     {:>8.3} ms", ms(self.total_ns))
    }
}

/// What the driver did to produce a [`CompiledLoop`].
#[derive(Debug, Clone)]
pub struct CompilationReport {
    /// The strategy the caller asked for.
    pub requested: Strategy,
    /// The strategy that produced the delivered code (differs from
    /// `requested` exactly when `fallbacks` is non-empty).
    pub delivered: Strategy,
    /// Every degradation step taken, in order.
    pub fallbacks: Vec<Fallback>,
    /// Pass-boundary checks run (IR verifications + schedule validations)
    /// across all attempts.
    pub boundary_checks: u32,
    /// Pass-level statistics of the delivered attempt.
    pub stats: PassStats,
}

/// Minimal JSON string escape (quotes, backslashes, control characters).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl CompilationReport {
    /// True when the delivered code came from the requested strategy.
    pub fn clean(&self) -> bool {
        self.fallbacks.is_empty()
    }

    /// Render this compilation's statistics as one self-contained JSON
    /// line (the `--stats` dump format): identification, fallback
    /// provenance, and every [`PassStats`] counter.
    pub fn stats_json_line(&self, looop: &str, machine: &str) -> String {
        let s = &self.stats;
        let fallbacks: Vec<String> = self
            .fallbacks
            .iter()
            .map(|fb| {
                format!(
                    "{{\"from\":\"{}\",\"to\":\"{}\",\"pass\":\"{}\"}}",
                    json_escape(&fb.from.to_string()),
                    json_escape(&fb.to.to_string()),
                    json_escape(&fb.reason.pass().to_string())
                )
            })
            .collect();
        let iis: Vec<String> = s.iis_tried.iter().map(|ii| ii.to_string()).collect();
        format!(
            "{{\"loop\":\"{}\",\"machine\":\"{}\",\"requested\":\"{}\",\"delivered\":\"{}\",\
             \"fallbacks\":[{}],\"boundary_checks\":{},\"partition_ns\":{},\"transform_ns\":{},\
             \"schedule_ns\":{},\"total_ns\":{},\"kl_passes\":{},\"kl_probes\":{},\
             \"kl_moves\":{},\"bin_packs\":{},\"schedules\":{},\"iis_tried\":[{}],\
             \"max_live\":[{},{},{},{}],\"search_ns\":{},\"search_nodes\":{},\
             \"search_probe\":{}}}",
            json_escape(looop),
            json_escape(machine),
            self.requested,
            self.delivered,
            fallbacks.join(","),
            self.boundary_checks,
            s.partition_ns,
            s.transform_ns,
            s.schedule_ns,
            s.total_ns,
            s.kl_passes,
            s.kl_probes,
            s.kl_moves,
            s.bin_packs,
            s.schedules,
            iis.join(","),
            s.max_live[0],
            s.max_live[1],
            s.max_live[2],
            s.max_live[3],
            s.search_ns,
            s.search_nodes,
            s.search_probe,
        )
    }
}

/// The degradation ladder: the strategy itself, then everything it may
/// fall back to, in order.
fn fallback_chain(s: Strategy) -> &'static [Strategy] {
    match s {
        Strategy::Optimal => &[
            Strategy::Optimal,
            Strategy::Selective,
            Strategy::Full,
            Strategy::Traditional,
            Strategy::ModuloOnly,
        ],
        Strategy::Selective => &[
            Strategy::Selective,
            Strategy::Full,
            Strategy::Traditional,
            Strategy::ModuloOnly,
        ],
        Strategy::Full => &[Strategy::Full, Strategy::Traditional, Strategy::ModuloOnly],
        Strategy::Traditional => &[Strategy::Traditional, Strategy::ModuloOnly],
        Strategy::Widened => &[Strategy::Widened, Strategy::ModuloOnly],
        Strategy::ModuloOnly => &[Strategy::ModuloOnly],
        Strategy::ModuloNoUnroll => &[Strategy::ModuloNoUnroll],
    }
}

/// One strategy attempt with its boundary-check accounting and pass-level
/// statistics.
struct Attempt<'a> {
    m: &'a MachineConfig,
    cfg: &'a DriverConfig,
    strategy: Strategy,
    boundary_checks: u32,
    stats: PassStats,
}

impl Attempt<'_> {
    /// Verify a pass-produced loop at the boundary.
    fn verify_boundary(&mut self, looop: &Loop, pass: Pass) -> Result<(), CompileError> {
        if !self.cfg.verify_boundaries {
            return Ok(());
        }
        self.boundary_checks += 1;
        looop.verify().map_err(|error| CompileError::BoundaryVerify {
            strategy: self.strategy,
            pass,
            looop: looop.name.clone(),
            error,
            dump: looop.to_string(),
        })
    }

    /// Schedule one loop under the budget, validating the result, with
    /// the pass timed and the scheduler's search effort recorded.
    fn schedule_one(&mut self, looop: &Loop) -> Result<Schedule, CompileError> {
        let t0 = std::time::Instant::now();
        let r = self.schedule_one_inner(looop);
        self.stats.schedule_ns += t0.elapsed().as_nanos() as u64;
        if let Ok(s) = &r {
            self.stats.schedules += 1;
            self.stats.iis_tried.extend_from_slice(&s.iis_tried);
            for (slot, &ml) in s.max_live.iter().enumerate() {
                self.stats.max_live[slot] = self.stats.max_live[slot].max(ml);
            }
        }
        r
    }

    fn schedule_one_inner(&mut self, looop: &Loop) -> Result<Schedule, CompileError> {
        let g = DepGraph::build(looop);
        let s = modulo_schedule_with(looop, &g, self.m, &self.cfg.schedule).map_err(
            |error| CompileError::Schedule {
                strategy: self.strategy,
                looop: looop.name.clone(),
                error,
            },
        )?;
        if self.cfg.verify_boundaries {
            self.boundary_checks += 1;
            validate_schedule(looop, &g, self.m, &s).map_err(|error| {
                CompileError::BoundaryValidate {
                    strategy: self.strategy,
                    looop: looop.name.clone(),
                    error,
                    dump: looop.to_string(),
                }
            })?;
        }
        Ok(s)
    }

    /// Build a segment from a main loop and the scalar form covering its
    /// remainder iterations.
    fn make_segment(&mut self, main: Loop, scalar_form: &Loop) -> Result<Segment, CompileError> {
        let schedule = self.schedule_one(&main)?;
        let t0 = std::time::Instant::now();
        let g = DepGraph::build(&main);
        let registers = allocate_rotating(&main, &g, self.m, &schedule).ok();
        self.stats.schedule_ns += t0.elapsed().as_nanos() as u64;
        let cleanup = if needs_cleanup(&main) {
            let mut c = scalar_form.clone();
            c.name = format!("{}.cleanup", scalar_form.name);
            let cs = self.schedule_one(&c)?;
            Some((c, cs))
        } else {
            None
        };
        Ok(Segment { looop: main, schedule, registers, cleanup })
    }

    /// Build a segment around a schedule the oracle already produced:
    /// the witness schedule is validated at the boundary exactly like a
    /// scheduler product, then registers are allocated and a cleanup
    /// loop is attached as in [`Attempt::make_segment`].
    fn make_segment_with_schedule(
        &mut self,
        main: Loop,
        schedule: Schedule,
        scalar_form: &Loop,
    ) -> Result<Segment, CompileError> {
        let t0 = std::time::Instant::now();
        let g = DepGraph::build(&main);
        if self.cfg.verify_boundaries {
            self.boundary_checks += 1;
            validate_schedule(&main, &g, self.m, &schedule).map_err(|error| {
                CompileError::BoundaryValidate {
                    strategy: self.strategy,
                    looop: main.name.clone(),
                    error,
                    dump: main.to_string(),
                }
            })?;
        }
        let registers = allocate_rotating(&main, &g, self.m, &schedule).ok();
        self.stats.schedule_ns += t0.elapsed().as_nanos() as u64;
        self.stats.schedules += 1;
        self.stats.iis_tried.extend_from_slice(&schedule.iis_tried);
        for (slot, &ml) in schedule.max_live.iter().enumerate() {
            self.stats.max_live[slot] = self.stats.max_live[slot].max(ml);
        }
        let cleanup = if needs_cleanup(&main) {
            let mut c = scalar_form.clone();
            c.name = format!("{}.cleanup", scalar_form.name);
            let cs = self.schedule_one(&c)?;
            Some((c, cs))
        } else {
            None
        };
        Ok(Segment { looop: main, schedule, registers, cleanup })
    }

    fn transform_err(&self, l: &Loop, error: TransformError) -> CompileError {
        CompileError::Transform {
            strategy: self.strategy,
            looop: l.name.clone(),
            error,
        }
    }

    /// Run the whole attempt for this strategy.
    fn run(&mut self, l: &Loop) -> Result<CompiledLoop, CompileError> {
        let m = self.m;
        let mut partition = None;
        let segments = match self.strategy {
            Strategy::ModuloNoUnroll => {
                vec![self.make_segment(l.clone(), l)?]
            }
            Strategy::ModuloOnly => {
                let t0 = std::time::Instant::now();
                let tr = try_transform(l, m, &vec![false; l.ops.len()]);
                self.stats.transform_ns += t0.elapsed().as_nanos() as u64;
                let t = tr.map_err(|e| self.transform_err(l, e))?;
                self.verify_boundary(&t.looop, Pass::Transform)?;
                vec![self.make_segment(t.looop, l)?]
            }
            Strategy::Full => {
                let t0 = std::time::Instant::now();
                let g = DepGraph::build(l);
                let part = full_vectorization_partition(l, &g, m.vector_length);
                let tr = try_transform(l, m, &part);
                self.stats.transform_ns += t0.elapsed().as_nanos() as u64;
                let t = tr.map_err(|e| self.transform_err(l, e))?;
                self.verify_boundary(&t.looop, Pass::Transform)?;
                vec![self.make_segment(t.looop, l)?]
            }
            Strategy::Selective => {
                let t0 = std::time::Instant::now();
                let g = DepGraph::build(l);
                let r = partition_ops(l, &g, m, &self.cfg.selective);
                self.stats.partition_ns += t0.elapsed().as_nanos() as u64;
                self.stats.kl_passes = r.iterations;
                self.stats.kl_probes = r.moves_evaluated;
                self.stats.kl_moves = r.moves_committed;
                self.stats.bin_packs = r.bin_packs;
                if r.budget_exhausted {
                    return Err(CompileError::BudgetExhausted {
                        strategy: self.strategy,
                        pass: Pass::Partition,
                        looop: l.name.clone(),
                        detail: format!(
                            "KL move budget {:?} spent after {} probes in {} passes",
                            self.cfg.selective.max_moves, r.moves_evaluated, r.iterations
                        ),
                    });
                }
                let t0 = std::time::Instant::now();
                let tr = try_transform(l, m, &r.partition);
                self.stats.transform_ns += t0.elapsed().as_nanos() as u64;
                let t = tr.map_err(|e| self.transform_err(l, e))?;
                self.verify_boundary(&t.looop, Pass::Transform)?;
                partition = Some(r);
                vec![self.make_segment(t.looop, l)?]
            }
            Strategy::Optimal => {
                // First the full selective pipeline: its result seeds the
                // oracle as the incumbent and remains the delivered code
                // when the proof closes on the incumbent itself.
                let t0 = std::time::Instant::now();
                let g = DepGraph::build(l);
                let r = partition_ops(l, &g, m, &self.cfg.selective);
                self.stats.partition_ns += t0.elapsed().as_nanos() as u64;
                self.stats.kl_passes = r.iterations;
                self.stats.kl_probes = r.moves_evaluated;
                self.stats.kl_moves = r.moves_committed;
                self.stats.bin_packs = r.bin_packs;
                if r.budget_exhausted {
                    return Err(CompileError::BudgetExhausted {
                        strategy: self.strategy,
                        pass: Pass::Partition,
                        looop: l.name.clone(),
                        detail: format!(
                            "KL move budget {:?} spent after {} probes in {} passes",
                            self.cfg.selective.max_moves, r.moves_evaluated, r.iterations
                        ),
                    });
                }
                let t0 = std::time::Instant::now();
                let tr = try_transform(l, m, &r.partition);
                self.stats.transform_ns += t0.elapsed().as_nanos() as u64;
                let t = tr.map_err(|e| self.transform_err(l, e))?;
                self.verify_boundary(&t.looop, Pass::Transform)?;
                let incumbent = self.make_segment(t.looop, l)?;
                // Then the complete branch-and-bound, seeded with the
                // heuristic's achieved II as the incumbent bound.
                let t0 = std::time::Instant::now();
                let report = optimal_search(
                    l,
                    m,
                    &r.partition,
                    incumbent.schedule.ii,
                    &OptimalConfig::default(),
                );
                self.stats.search_ns += t0.elapsed().as_nanos() as u64;
                self.stats.search_nodes = report.stats.nodes;
                self.stats.search_probe = report.probe_spent;
                match report.outcome {
                    OptimalOutcome::BudgetExhausted { best_found } => {
                        return Err(CompileError::BudgetExhausted {
                            strategy: self.strategy,
                            pass: Pass::Search,
                            looop: l.name.clone(),
                            detail: format!(
                                "oracle budget spent ({} nodes, {} probe units) before \
                                 the proof closed; best witnessed II {best_found}",
                                report.stats.nodes, report.probe_spent
                            ),
                        });
                    }
                    OptimalOutcome::Proved(_) => match report.witness {
                        // The oracle beat the incumbent: deliver its
                        // witness partition and schedule.
                        Some(w) => {
                            self.verify_boundary(&w.looop, Pass::Transform)?;
                            let seg =
                                self.make_segment_with_schedule(w.looop, w.schedule, l)?;
                            partition = Some(PartitionResult {
                                partition: w.partition,
                                cost: seg.schedule.resmii,
                                ..r
                            });
                            vec![seg]
                        }
                        // The incumbent is proved optimal already.
                        None => {
                            partition = Some(r);
                            vec![incumbent]
                        }
                    },
                }
            }
            Strategy::Widened => {
                let t0 = std::time::Instant::now();
                let w = try_widened_window_transform(l, m, m.vector_length + 1);
                self.stats.transform_ns += t0.elapsed().as_nanos() as u64;
                let w = w.map_err(|e| self.transform_err(l, e))?;
                match w {
                    Some(w) => {
                        self.verify_boundary(&w, Pass::Transform)?;
                        vec![self.make_segment(w, l)?]
                    }
                    // Ineligible loops run as the unrolled baseline.
                    None => {
                        let t0 = std::time::Instant::now();
                        let tr = try_transform(l, m, &vec![false; l.ops.len()]);
                        self.stats.transform_ns += t0.elapsed().as_nanos() as u64;
                        let t = tr.map_err(|e| self.transform_err(l, e))?;
                        self.verify_boundary(&t.looop, Pass::Transform)?;
                        vec![self.make_segment(t.looop, l)?]
                    }
                }
            }
            Strategy::Traditional => {
                let t0 = std::time::Instant::now();
                let d = try_traditional_vectorize(l, m);
                self.stats.transform_ns += t0.elapsed().as_nanos() as u64;
                let d = d.map_err(|e| self.transform_err(l, e))?;
                let mut segs = Vec::with_capacity(d.loops.len());
                for dl in d.loops {
                    let scalar_form = dl.scalar_form;
                    let main = dl.vectorized.unwrap_or_else(|| scalar_form.clone());
                    self.verify_boundary(&main, Pass::Transform)?;
                    segs.push(self.make_segment(main, &scalar_form)?);
                }
                segs
            }
        };
        Ok(CompiledLoop { strategy: self.strategy, source: l.clone(), segments, partition })
    }
}

fn needs_cleanup(looop: &Loop) -> bool {
    looop.iter_scale > 1
        && !(looop.trip.compile_time_known
            && looop.trip.count.is_multiple_of(u64::from(looop.iter_scale)))
}

/// Render a contained panic payload.
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compile `l` for machine `m` under the hardened driver: typed errors,
/// pass-boundary verification, deterministic budgets, graceful strategy
/// degradation, and panic containment, per [`DriverConfig`].
///
/// The returned [`CompilationReport`] carries the [`PassStats`] of the
/// delivered attempt: per-pass wall time, partitioner search effort,
/// scheduler II trace and register-pressure high-water marks.
///
/// # Errors
///
/// Returns the *last* attempt's [`CompileError`] when every strategy on
/// the degradation ladder fails (or the first attempt's, when
/// [`DriverConfig::degrade`] is off). Earlier failures are preserved as
/// [`Fallback`] records — the driver never silently discards a reason.
pub fn compile_checked(
    l: &Loop,
    m: &MachineConfig,
    cfg: &DriverConfig,
) -> Result<(CompiledLoop, CompilationReport), CompileError> {
    if let Err(error) = l.verify() {
        return Err(CompileError::InvalidInput {
            looop: l.name.clone(),
            error,
            dump: l.to_string(),
        });
    }

    let mut report = CompilationReport {
        requested: cfg.strategy,
        delivered: cfg.strategy,
        fallbacks: Vec::new(),
        boundary_checks: 0,
        stats: PassStats::default(),
    };

    let chain = fallback_chain(cfg.strategy);
    let mut last_err: Option<CompileError> = None;
    for (i, &strategy) in chain.iter().enumerate() {
        if i > 0 && !cfg.degrade {
            break;
        }
        let mut attempt =
            Attempt { m, cfg, strategy, boundary_checks: 0, stats: PassStats::default() };
        let attempt_start = std::time::Instant::now();
        let result = if cfg.catch_panics {
            match catch_unwind(AssertUnwindSafe(|| attempt.run(l))) {
                Ok(r) => r,
                Err(payload) => Err(CompileError::Internal {
                    strategy,
                    looop: l.name.clone(),
                    payload: payload_string(payload),
                    dump: l.to_string(),
                }),
            }
        } else {
            attempt.run(l)
        };
        report.boundary_checks += attempt.boundary_checks;
        match result {
            Ok(compiled) => {
                report.delivered = strategy;
                attempt.stats.total_ns = attempt_start.elapsed().as_nanos() as u64;
                report.stats = attempt.stats;
                return Ok((compiled, report));
            }
            Err(e) => {
                if cfg.degrade {
                    if let Some(&next) = chain.get(i + 1) {
                        report.fallbacks.push(Fallback {
                            from: strategy,
                            to: next,
                            reason: e.clone(),
                        });
                    }
                }
                last_err = Some(e);
            }
        }
    }
    Err(last_err.expect("chain is never empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_ir::{LoopBuilder, ScalarType};

    fn figure1_dot() -> Loop {
        let mut b = LoopBuilder::new("dot");
        b.trip(100);
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let mu = b.fmul(lx, ly);
        b.reduce_add(mu);
        b.finish()
    }

    #[test]
    fn pass_stats_populated_for_selective() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let (c, report) = compile_checked(&l, &m, &DriverConfig::default()).unwrap();
        let s = &report.stats;
        // Partitioner counters: the KL descent probed and packed.
        assert!(s.kl_passes > 0, "kl_passes = {}", s.kl_passes);
        assert!(s.kl_probes > 0, "kl_probes = {}", s.kl_probes);
        assert!(s.bin_packs > 0, "bin_packs = {}", s.bin_packs);
        // Scheduler counters: every segment (main + cleanup) scheduled,
        // and the achieved II appears in the II search trace.
        let pieces: u32 = c
            .segments
            .iter()
            .map(|seg| 1 + u32::from(seg.cleanup.is_some()))
            .sum();
        assert_eq!(s.schedules, pieces);
        assert!(s.iis_tried.contains(&c.segments[0].schedule.ii));
        assert!(s.max_live.iter().any(|&x| x > 0), "max_live = {:?}", s.max_live);
        // Per-pass wall times were measured.
        assert!(s.total_ns > 0);
        assert!(s.total_ns >= s.partition_ns);
        // The counters mirror the recorded partition exactly.
        let p = c.partition.as_ref().expect("selective records a partition");
        assert_eq!(s.kl_passes, p.iterations);
        assert_eq!(s.kl_probes, p.moves_evaluated);
        assert_eq!(s.kl_moves, p.moves_committed);
        assert_eq!(s.bin_packs, p.bin_packs);
    }

    #[test]
    fn stats_json_line_is_one_well_formed_line() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let (_, report) = compile_checked(&l, &m, &DriverConfig::default()).unwrap();
        let j = report.stats_json_line("fig1.dot", "figure1");
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(!j.contains('\n'), "stats line must be a single line: {j}");
        for key in [
            "\"loop\":\"fig1.dot\"",
            "\"machine\":\"figure1\"",
            "\"requested\":\"selective\"",
            "\"delivered\":\"selective\"",
            "\"fallbacks\":[]",
            "\"kl_probes\":",
            "\"bin_packs\":",
            "\"iis_tried\":[",
            "\"max_live\":[",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the workspace).
        let braces =
            j.chars().filter(|&c| c == '{').count() - j.chars().filter(|&c| c == '}').count();
        assert_eq!(braces, 0);
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        let j = json_escape("a\"b\\c\nd\u{1}");
        assert_eq!(j, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn optimal_strategy_delivers_certified_minimum() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let cfg = DriverConfig::for_strategy(Strategy::Optimal);
        let (c, report) = compile_checked(&l, &m, &cfg).unwrap();
        // The oracle must close the proof on Figure 1's dot product and
        // deliver the paper's II of 2 for 2 original iterations.
        assert!(report.clean(), "fallbacks: {:?}", report.fallbacks);
        assert_eq!(report.delivered, Strategy::Optimal);
        assert_eq!(c.ii_per_original_iteration(), 1.0);
        assert!(c.partition.is_some(), "optimal records its partition");
        // The search pass ran and was accounted.
        assert!(report.stats.search_nodes > 0 || report.stats.search_probe > 0);
        let j = report.stats_json_line("fig1.dot", "figure1");
        assert!(j.contains("\"requested\":\"optimal\""), "{j}");
        assert!(j.contains("\"search_nodes\":"), "{j}");
    }

    #[test]
    fn optimal_matches_selective_or_better_on_figure1_machines() {
        let l = figure1_dot();
        for m in [MachineConfig::figure1(), MachineConfig::paper_default()] {
            let sel = crate::pipeline::compile(&l, &m, Strategy::Selective).unwrap();
            let opt = crate::pipeline::compile(&l, &m, Strategy::Optimal).unwrap();
            assert!(
                opt.ii_per_original_iteration() <= sel.ii_per_original_iteration(),
                "machine {}: optimal {} > selective {}",
                m.name,
                opt.ii_per_original_iteration(),
                sel.ii_per_original_iteration()
            );
        }
    }

    #[test]
    fn modulo_only_has_no_partition_stats() {
        let l = figure1_dot();
        let m = MachineConfig::figure1();
        let cfg = DriverConfig::for_strategy(Strategy::ModuloOnly);
        let (_, report) = compile_checked(&l, &m, &cfg).unwrap();
        assert_eq!(report.stats.kl_probes, 0);
        assert_eq!(report.stats.partition_ns, 0);
        assert!(report.stats.schedules > 0);
    }
}
