//! # sv-core — selective vectorization for software pipelined loops
//!
//! The primary contribution of *Exploiting Vector Parallelism in Software
//! Pipelined Loops* (MICRO 2005): a Kernighan–Lin partitioner that divides
//! a loop's operations between scalar and vector resources to minimize the
//! resource-constrained initiation interval of the subsequent modulo
//! schedule — including the cost of explicit scalar↔vector operand
//! transfers and of misaligned-access realignment — plus the end-to-end
//! [`compile`] pipeline covering all four techniques the paper compares.
//!
//! ```
//! use sv_core::{compile, Strategy};
//! use sv_machine::MachineConfig;
//! use sv_ir::{LoopBuilder, ScalarType};
//!
//! // The paper's Figure 1 dot product on the Figure 1 toy machine.
//! let mut b = LoopBuilder::new("dot");
//! let x = b.array("x", ScalarType::F64, 1024);
//! let y = b.array("y", ScalarType::F64, 1024);
//! let lx = b.load(x, 1, 0);
//! let ly = b.load(y, 1, 0);
//! let m = b.fmul(lx, ly);
//! b.reduce_add(m);
//! let looop = b.finish();
//!
//! let machine = MachineConfig::figure1();
//! let sel = compile(&looop, &machine, Strategy::Selective).unwrap();
//! assert_eq!(sel.ii_per_original_iteration(), 1.0); // Figure 1(f)
//! ```

pub mod cache;
mod driver;
pub mod optimal;
pub mod parallel;
mod partition;
mod pipeline;

pub use cache::{
    compile_cached, request_key, CacheConfig, CacheOutcome, CacheStats, CompileCache,
    DiskFaults, RecoveryReport, ShardStats, WriteFault,
};
pub use driver::{
    compile_checked, CompilationReport, CompileError, DriverConfig, Fallback, Pass,
    PassStats,
};
pub use optimal::{optimal_search, OptimalConfig, OptimalReport, OptimalWitness};
pub use partition::{
    partition_ops, partition_ops_with_legality, PartitionResult, SelectiveConfig,
};
pub use pipeline::{compile, compile_with, CompiledLoop, Segment, Strategy};
