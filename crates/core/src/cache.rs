//! Content-addressed compilation caching.
//!
//! Autotuning-style clients (an RL loop searching vectorization settings,
//! a global optimizer re-evaluating overlapping subproblems) issue the
//! same `(loop, machine, configuration)` compile request thousands of
//! times. [`compile_cached`] fronts [`compile_checked`] with a two-tier
//! content-addressed cache keyed by [`request_key`] — a
//! [`CanonicalHash`] over the loop's canonical display form plus
//! fingerprints of the machine description and the full [`DriverConfig`]
//! — so a repeated request returns the previously rendered result without
//! re-running KL partitioning or the II search:
//!
//! * **memory tier** — a sharded LRU bounded by entry count *and*
//!   approximate bytes, with hit/miss/eviction counters;
//! * **disk tier** (optional) — one file per key holding the rendered
//!   result behind a checksummed header, written through on every
//!   compile and read through on a memory miss. A corrupt or truncated
//!   entry is *quarantined* (renamed aside, logged, counted) and the
//!   request recompiles — a bad disk entry can never fail a request.
//!
//! The cached value is the **canonical result rendering**
//! ([`render_result`]): one deterministic JSON object with the delivered
//! strategy, fallback provenance, deterministic [`PassStats`] counters
//! (wall-clock fields are deliberately excluded) and re-parseable dumps
//! of every scheduled segment. Identical requests therefore produce
//! byte-identical results whether served cold, from memory, or from disk
//! across a process restart.

use crate::driver::{compile_checked, json_escape, CompilationReport, CompileError, DriverConfig};
use crate::pipeline::CompiledLoop;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use sv_ir::{CanonicalHash, CanonicalHasher, Loop};
use sv_machine::MachineConfig;

/// Version tag woven into every cache key: bump when the result rendering
/// or the fingerprint scheme changes, invalidating stale disk tiers.
/// v2: machine and driver-config fingerprints switched from `Debug`
/// renderings to canonical encodings ([`MachineConfig::to_spec`] /
/// [`DriverConfig::canonical_encoding`]), so keys are invariant under
/// spec formatting and derive churn.
/// v3: predicated IR (`cmp`/`select`) landed — loops and machines gained
/// new canonical dimensions (select opcodes in the loop text,
/// `select_units`/`lat.select` in every machine encoding), so v2 entries
/// describe results a v3 compiler would not reproduce.
const KEY_SCHEMA: &str = "sv-core/cache/v3";

/// Magic prefixing every disk entry's header line.
const DISK_MAGIC: &str = "svcache/v1";

/// The complete cache key for one compile request: the loop in canonical
/// display form plus canonical encodings of the machine description
/// ([`MachineConfig::to_spec`] — the full key set in fixed order) and
/// every [`DriverConfig`] knob (strategy, selective/schedule budgets,
/// boundary verification, degradation, panic policy). Any change to any
/// input changes the key; nothing else does. In particular, two machine
/// spec texts differing only in whitespace, comments or key order parse
/// to equal configurations and therefore produce byte-identical keys —
/// the invariance the `ci.sh` named-vs-inline-spec loadgen gate proves
/// end to end.
pub fn request_key(l: &Loop, m: &MachineConfig, cfg: &DriverConfig) -> CanonicalHash {
    l.canonical_hash(&[KEY_SCHEMA, &m.to_spec(), &cfg.canonical_encoding()])
}

/// Chaos-layer verdict for one disk write (see [`DiskFaults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write normally.
    None,
    /// Fail the write with an injected I/O error (surfaced exactly like
    /// a real `EIO`: logged, counted, never an error for the request).
    Error,
    /// Simulate a crash mid-write: only the first `keep` bytes of the
    /// serialized entry reach the *final* path, bypassing the tmp+rename
    /// discipline — the silent-corruption case atomic renames normally
    /// rule out, which read validation and [`CompileCache::recover`]
    /// must catch.
    Torn {
        /// How many serialized bytes land on disk (clamped to the entry
        /// length; a full-length cut degenerates to a valid write, just
        /// like a crash after the last byte).
        keep: usize,
    },
    /// Simulate a crash between the tmp write and the rename: the temp
    /// file is left behind and the entry never becomes visible.
    OrphanTmp,
}

/// Deterministic fault hooks for the disk tier. The serving layer's
/// chaos plan implements this to inject seeded I/O failures and
/// kill-at-any-write-point torn writes; production caches carry no
/// injector and take the `None`/`false` fast paths.
pub trait DiskFaults: Send + Sync + std::fmt::Debug {
    /// Whether reading `key`'s entry should fail with an injected I/O
    /// error (treated exactly like an unreadable file).
    fn read_fault(&self, key: CanonicalHash) -> bool;

    /// What should happen to the write of `key`'s entry; `len` is the
    /// full serialized entry length so torn cuts can land anywhere.
    fn write_fault(&self, key: CanonicalHash, len: usize) -> WriteFault;
}

/// What the open-time crash-recovery sweep found (see
/// [`CompileCache::recover`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Disk entries examined.
    pub scanned: u64,
    /// Corrupt or mismatched entries quarantined (also counted in
    /// [`CacheStats::disk_errors`] — they are genuine defects).
    pub quarantined: u64,
    /// Orphaned temporary files (a crash between write and rename)
    /// moved aside; benign, so not counted as disk errors.
    pub orphans: u64,
}

/// Where a [`compile_cached`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory tier.
    Memory,
    /// Served from the on-disk tier (and promoted to memory).
    Disk,
    /// Compiled fresh (and written through both tiers).
    Compiled,
}

/// Sizing and placement of a [`CompileCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum resident entries across all shards.
    pub mem_entries: usize,
    /// Approximate maximum resident bytes across all shards (rendered
    /// result bytes plus a small per-entry overhead).
    pub mem_bytes: usize,
    /// Shard count for the memory tier (reduces lock contention; capacity
    /// is divided evenly between shards).
    pub shards: usize,
    /// Directory for the disk tier; `None` disables it.
    pub disk_dir: Option<PathBuf>,
    /// Deterministic disk-fault injector (chaos testing); `None` in
    /// production.
    pub faults: Option<Arc<dyn DiskFaults>>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            mem_entries: 4096,
            mem_bytes: 64 << 20,
            shards: 16,
            disk_dir: None,
            faults: None,
        }
    }
}

/// A point-in-time snapshot of the cache's counters and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub mem_hits: u64,
    /// Lookups served from disk.
    pub disk_hits: u64,
    /// Lookups that found nothing and compiled.
    pub misses: u64,
    /// Entries evicted from the memory tier.
    pub evictions: u64,
    /// Disk entries quarantined as corrupt or unreadable.
    pub disk_errors: u64,
    /// Files the open-time recovery sweep moved aside (corrupt entries
    /// plus orphaned temporaries).
    pub recovered: u64,
    /// Entries currently resident in memory.
    pub entries: u64,
    /// Approximate bytes currently resident in memory.
    pub bytes: u64,
}

impl CacheStats {
    /// Total hits over both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Hit fraction over all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// One resident memory-tier entry.
struct Entry {
    body: Arc<str>,
    /// Recency tick, also the key into [`Shard::lru`].
    tick: u64,
}

/// Fixed accounting overhead per resident entry (map + LRU bookkeeping).
const ENTRY_OVERHEAD: usize = 64;

/// One memory-tier shard: a hash map plus an exact LRU order maintained
/// as a tick → key index (ticks are unique within a shard).
#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    lru: BTreeMap<u64, u128>,
    next_tick: u64,
    bytes: usize,
    /// Lookups routed to this shard (memory tier; disk promotions count
    /// as hits for the shard that absorbed them).
    lookups: u64,
    /// Lookups this shard answered (memory hit or disk promotion).
    hits: u64,
}

/// Per-shard counters surfaced by [`CompileCache::shard_stats`] — the
/// serving layer's `metrics` verb reports these so a skewed keyspace
/// (one hot shard soaking every lookup) is visible in production.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups routed to this shard.
    pub lookups: u64,
    /// Lookups this shard answered (memory hit or disk promotion).
    pub hits: u64,
    /// Entries currently resident in this shard.
    pub entries: u64,
}

impl ShardStats {
    /// Hit fraction for this shard (0 when it saw no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl Shard {
    fn touch(&mut self, key: u128) -> Option<Arc<str>> {
        let tick = self.next_tick;
        let e = self.map.get_mut(&key)?;
        let old = std::mem::replace(&mut e.tick, tick);
        let body = Arc::clone(&e.body);
        self.lru.remove(&old);
        self.lru.insert(tick, key);
        self.next_tick += 1;
        Some(body)
    }

    /// Insert (or refresh) an entry, then evict LRU entries past the
    /// shard budgets. Returns the number of evictions performed.
    fn insert(&mut self, key: u128, body: Arc<str>, max_entries: usize, max_bytes: usize) -> u64 {
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.tick);
            self.bytes -= old.body.len() + ENTRY_OVERHEAD;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.bytes += body.len() + ENTRY_OVERHEAD;
        self.map.insert(key, Entry { body, tick });
        self.lru.insert(tick, key);
        let mut evicted = 0;
        // Always keep the entry just inserted, even if it alone exceeds
        // the byte budget — the cache must be able to serve it.
        while self.map.len() > 1
            && (self.map.len() > max_entries.max(1) || self.bytes > max_bytes)
        {
            let (&tick, &victim) = self.lru.iter().next().expect("lru tracks every entry");
            self.lru.remove(&tick);
            let e = self.map.remove(&victim).expect("map tracks every entry");
            self.bytes -= e.body.len() + ENTRY_OVERHEAD;
            evicted += 1;
        }
        evicted
    }
}

/// The two-tier content-addressed cache (see module docs).
pub struct CompileCache {
    cfg: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    disk_errors: AtomicU64,
    recovery: Mutex<RecoveryReport>,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

impl CompileCache {
    /// Build a cache. Creates the disk directory (and parents) when a
    /// disk tier is configured, then runs the crash-recovery sweep
    /// ([`CompileCache::recover`]) over it so a process killed at any
    /// write point leaves nothing a later lookup could mis-serve.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the disk directory cannot be created
    /// or scanned. Per-file defects never error — they quarantine.
    pub fn new(cfg: CacheConfig) -> io::Result<CompileCache> {
        if let Some(dir) = &cfg.disk_dir {
            std::fs::create_dir_all(dir)?;
        }
        let shards = cfg.shards.max(1);
        let cache = CompileCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            cfg,
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_errors: AtomicU64::new(0),
            recovery: Mutex::new(RecoveryReport::default()),
        };
        cache.recover()?;
        Ok(cache)
    }

    /// Crash-recovery sweep over the disk tier: every `*.svc` entry is
    /// re-validated (header, key-vs-filename, length, digest) and every
    /// defect quarantined; orphaned `*.svc.tmp.*` files — a crash
    /// between write and rename — are moved aside. Runs automatically at
    /// open; idempotent (a second sweep over a recovered directory finds
    /// nothing). After the sweep, every surviving entry is guaranteed to
    /// serve byte-exact content.
    ///
    /// # Errors
    ///
    /// Only if the directory itself cannot be listed; per-file problems
    /// quarantine and continue.
    pub fn recover(&self) -> io::Result<RecoveryReport> {
        let Some(dir) = &self.cfg.disk_dir else { return Ok(RecoveryReport::default()) };
        let mut report = RecoveryReport::default();
        let mut paths: Vec<PathBuf> =
            std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort(); // deterministic sweep order for logs and tests
        for path in paths {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            if name.ends_with(".quarantined") {
                continue; // already moved aside by an earlier sweep
            }
            if name.contains(".svc.tmp") {
                // Orphaned temporary: the writer died before its rename.
                // The entry was never visible, so this is cleanup, not
                // corruption.
                report.orphans += 1;
                let aside = path.with_file_name(format!("{name}.quarantined"));
                let moved =
                    std::fs::rename(&path, &aside).is_ok() || std::fs::remove_file(&path).is_ok();
                eprintln!(
                    "sv-core: cache: recovery quarantined orphaned tmp {}{}",
                    path.display(),
                    if moved { "" } else { " [could not move aside]" }
                );
                continue;
            }
            if !name.ends_with(".svc") {
                continue; // foreign file; not ours to touch
            }
            report.scanned += 1;
            let defect = match name.trim_end_matches(".svc").parse::<CanonicalHash>() {
                Err(e) => Some(format!("unparseable key in filename: {e}")),
                Ok(key) => match std::fs::read_to_string(&path) {
                    Err(e) => Some(format!("unreadable: {e}")),
                    Ok(text) => validate_disk_entry(&text, key).err(),
                },
            };
            if let Some(reason) = defect {
                report.quarantined += 1;
                self.quarantine(&path, &format!("recovery sweep: {reason}"));
            }
        }
        if report.quarantined + report.orphans > 0 {
            eprintln!(
                "sv-core: cache: recovery swept {} entries, quarantined {} corrupt, \
                 {} orphaned tmp files",
                report.scanned, report.quarantined, report.orphans
            );
        }
        let mut slot = self.recovery.lock().expect("recovery report poisoned");
        slot.scanned += report.scanned;
        slot.quarantined += report.quarantined;
        slot.orphans += report.orphans;
        Ok(report)
    }

    /// What the open-time recovery sweep(s) found, cumulatively.
    pub fn recovery(&self) -> RecoveryReport {
        *self.recovery.lock().expect("recovery report poisoned")
    }

    /// An in-memory-only cache with default sizing.
    pub fn in_memory() -> CompileCache {
        CompileCache::new(CacheConfig::default()).expect("no disk tier, cannot fail")
    }

    fn shard(&self, key: CanonicalHash) -> &Mutex<Shard> {
        &self.shards[(key.0 % self.shards.len() as u128) as usize]
    }

    fn per_shard_entries(&self) -> usize {
        (self.cfg.mem_entries / self.shards.len()).max(1)
    }

    fn per_shard_bytes(&self) -> usize {
        (self.cfg.mem_bytes / self.shards.len()).max(1)
    }

    /// Look `key` up in memory, then disk. A disk hit is promoted into
    /// the memory tier. Does **not** count a miss — only
    /// [`CompileCache::lookup`]'s callers know whether a compile follows.
    fn lookup_inner(&self, key: CanonicalHash) -> Option<(Arc<str>, CacheOutcome)> {
        {
            let mut shard = self.shard(key).lock().expect("cache shard poisoned");
            shard.lookups += 1;
            if let Some(body) = shard.touch(key.0) {
                shard.hits += 1;
                drop(shard);
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                return Some((body, CacheOutcome::Memory));
            }
        }
        let body = self.disk_read(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        let evicted = {
            let mut shard = self.shard(key).lock().expect("cache shard poisoned");
            shard.hits += 1; // disk promotion: this shard absorbed the lookup
            shard.insert(
                key.0,
                Arc::clone(&body),
                self.per_shard_entries(),
                self.per_shard_bytes(),
            )
        };
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        Some((body, CacheOutcome::Disk))
    }

    /// Look `key` up in both tiers, counting a miss when absent.
    pub fn lookup(&self, key: CanonicalHash) -> Option<(Arc<str>, CacheOutcome)> {
        let r = self.lookup_inner(key);
        if r.is_none() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Insert a freshly rendered result: memory tier always, disk tier
    /// when configured (write-through). Disk write failures are logged
    /// and counted, never surfaced — the cache is an accelerator.
    pub fn insert(&self, key: CanonicalHash, body: Arc<str>) {
        let evicted = self.shard(key).lock().expect("cache shard poisoned").insert(
            key.0,
            Arc::clone(&body),
            self.per_shard_entries(),
            self.per_shard_bytes(),
        );
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        if let Err(e) = self.disk_write(key, &body) {
            self.disk_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("sv-core: cache: disk write for {key} failed: {e} (entry stays in memory)");
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for s in &self.shards {
            let s = s.lock().expect("cache shard poisoned");
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        let rec = self.recovery();
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            recovered: rec.quarantined + rec.orphans,
            entries,
            bytes,
        }
    }

    /// Per-shard lookup/hit/occupancy counters, in shard-index order
    /// (the `metrics` verb renders these as per-shard hit rates).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("cache shard poisoned");
                ShardStats { lookups: s.lookups, hits: s.hits, entries: s.map.len() as u64 }
            })
            .collect()
    }

    /// The disk path of a key's entry.
    fn entry_path(&self, key: CanonicalHash) -> Option<PathBuf> {
        self.cfg.disk_dir.as_ref().map(|d| d.join(format!("{key}.svc")))
    }

    /// Read and validate a disk entry. Any defect — bad magic, key
    /// mismatch, length mismatch, checksum mismatch, unreadable file —
    /// quarantines the entry and returns `None` (the caller recompiles).
    fn disk_read(&self, key: CanonicalHash) -> Option<Arc<str>> {
        let path = self.entry_path(key)?;
        if self.cfg.faults.as_ref().is_some_and(|f| f.read_fault(key)) {
            // An injected read failure behaves exactly like a real one:
            // the entry is set aside and the request recompiles (the
            // write-through then restores a good copy).
            if path.exists() {
                self.quarantine(&path, "injected read fault");
            }
            return None;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.quarantine(&path, &format!("unreadable: {e}"));
                return None;
            }
        };
        match validate_disk_entry(&text, key) {
            Ok(body) => Some(Arc::from(body)),
            Err(reason) => {
                self.quarantine(&path, &reason);
                None
            }
        }
    }

    /// Move a defective disk entry aside (or delete it if the move
    /// fails), log one line, and count it. Never errors the request.
    fn quarantine(&self, path: &Path, reason: &str) {
        self.disk_errors.fetch_add(1, Ordering::Relaxed);
        let aside = path.with_extension("svc.quarantined");
        let moved = std::fs::rename(path, &aside).is_ok() || std::fs::remove_file(path).is_ok();
        eprintln!(
            "sv-core: cache: quarantined corrupt disk entry {} ({reason}){}; recompiling",
            path.display(),
            if moved { "" } else { " [could not move aside]" }
        );
    }

    /// Write-through one entry: checksummed header + body, written to a
    /// temporary file and renamed into place so readers never observe a
    /// partial entry. A configured fault injector can override the write
    /// with an error, a torn (partial, non-atomic) write, or an orphaned
    /// temporary — the crash shapes [`CompileCache::recover`] and read
    /// validation must absorb.
    fn disk_write(&self, key: CanonicalHash, body: &str) -> io::Result<()> {
        let Some(path) = self.entry_path(key) else { return Ok(()) };
        let rendered = render_disk_entry(key, body);
        let tmp = path.with_extension(format!("svc.tmp.{}", std::process::id()));
        let fault = self
            .cfg
            .faults
            .as_ref()
            .map_or(WriteFault::None, |f| f.write_fault(key, rendered.len()));
        match fault {
            WriteFault::None => {
                std::fs::write(&tmp, rendered)?;
                std::fs::rename(&tmp, &path)
            }
            WriteFault::Error => {
                Err(io::Error::other("injected disk write fault"))
            }
            WriteFault::Torn { keep } => {
                // Crash mid-write with no atomic rename: a prefix lands on
                // the final path. Deliberately *silent* — the defect must
                // be caught by validation, not by the writer.
                let keep = keep.min(rendered.len());
                std::fs::write(&path, &rendered.as_bytes()[..keep])?;
                Ok(())
            }
            WriteFault::OrphanTmp => {
                // Crash between write and rename: tmp file left behind,
                // entry never visible.
                std::fs::write(&tmp, rendered)?;
                Ok(())
            }
        }
    }
}

/// Checksum used by the disk-entry header (content digest of the body).
fn body_digest(body: &str) -> CanonicalHash {
    let mut h = CanonicalHasher::new();
    h.section(body.as_bytes());
    h.finish()
}

/// Serialize one disk entry: `svcache/v1 <key> <len> <digest>\n<body>`.
fn render_disk_entry(key: CanonicalHash, body: &str) -> String {
    format!("{DISK_MAGIC} {key} {} {}\n{body}", body.len(), body_digest(body))
}

/// Parse and validate a disk entry, returning the body on success and a
/// human-readable defect description otherwise.
fn validate_disk_entry(text: &str, key: CanonicalHash) -> Result<String, String> {
    let (header, body) = text.split_once('\n').ok_or("missing header line")?;
    let mut parts = header.split(' ');
    if parts.next() != Some(DISK_MAGIC) {
        return Err(format!("bad magic in `{header}`"));
    }
    let stored_key: CanonicalHash =
        parts.next().ok_or("missing key")?.parse().map_err(|e| format!("bad key: {e}"))?;
    if stored_key != key {
        return Err(format!("key mismatch: entry says {stored_key}, expected {key}"));
    }
    let len: usize = parts
        .next()
        .ok_or("missing length")?
        .parse()
        .map_err(|e| format!("bad length: {e}"))?;
    if body.len() != len {
        return Err(format!("length mismatch: header says {len}, body is {}", body.len()));
    }
    let digest: CanonicalHash = parts
        .next()
        .ok_or("missing digest")?
        .parse()
        .map_err(|e| format!("bad digest: {e}"))?;
    if body_digest(body) != digest {
        return Err("checksum mismatch".into());
    }
    Ok(body.to_string())
}

/// Render the canonical, fully deterministic result of one compilation as
/// a single-line JSON object — the value [`compile_cached`] stores and
/// returns. Contains the delivered strategy, fallback provenance,
/// boundary-check count, the priced outcome, the deterministic
/// [`crate::PassStats`] counters (the `*_ns` wall times are excluded so
/// identical requests render identical bytes), and a re-parseable
/// `Display` dump of every scheduled segment (main + cleanup).
pub fn render_result(
    key: CanonicalHash,
    m: &MachineConfig,
    c: &CompiledLoop,
    report: &CompilationReport,
) -> String {
    let s = &report.stats;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"key\":\"{key}\",\"loop\":\"{}\",\"machine\":\"{}\",\"requested\":\"{}\",\
         \"delivered\":\"{}\",\"fallbacks\":[",
        json_escape(&c.source.name),
        json_escape(&m.name),
        report.requested,
        report.delivered,
    );
    for (i, fb) in report.fallbacks.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}{{\"from\":\"{}\",\"to\":\"{}\",\"pass\":\"{}\"}}",
            fb.from,
            fb.to,
            fb.reason.pass()
        );
    }
    let iis: Vec<String> = s.iis_tried.iter().map(|ii| ii.to_string()).collect();
    let _ = write!(
        out,
        "],\"boundary_checks\":{},\"ii_per_orig\":{:.4},\"resmii_per_orig\":{:.4},\
         \"cycles\":{},\"kl_passes\":{},\"kl_probes\":{},\"kl_moves\":{},\"bin_packs\":{},\
         \"schedules\":{},\"iis_tried\":[{}],\"max_live\":[{},{},{},{}],\"segments\":[",
        report.boundary_checks,
        c.ii_per_original_iteration(),
        c.resmii_per_original_iteration(),
        c.total_cycles(m),
        s.kl_passes,
        s.kl_probes,
        s.kl_moves,
        s.bin_packs,
        s.schedules,
        iis.join(","),
        s.max_live[0],
        s.max_live[1],
        s.max_live[2],
        s.max_live[3],
    );
    for (i, seg) in c.segments.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}{{\"ii\":{},\"stages\":{},\"registers\":{},\"dump\":\"{}\"",
            seg.schedule.ii,
            seg.schedule.stage_count,
            seg.registers.is_some(),
            json_escape(&seg.looop.to_string()),
        );
        match &seg.cleanup {
            Some((cl, cs)) => {
                let _ = write!(
                    out,
                    ",\"cleanup_ii\":{},\"cleanup_dump\":\"{}\"}}",
                    cs.ii,
                    json_escape(&cl.to_string())
                );
            }
            None => out.push('}'),
        }
    }
    out.push_str("]}");
    out
}

/// [`compile_checked`] behind the two-tier cache: compute the
/// [`request_key`], serve from memory or disk when present, otherwise
/// compile, render the canonical result, and write it through both tiers.
/// Returns the rendered result and where it came from.
///
/// Compile *errors* are not cached: pathological inputs re-diagnose on
/// every request (they are rare and their diagnosis is the product).
///
/// # Errors
///
/// Exactly [`compile_checked`]'s errors; the cache itself never fails a
/// request.
pub fn compile_cached(
    l: &Loop,
    m: &MachineConfig,
    cfg: &DriverConfig,
    cache: &CompileCache,
) -> Result<(Arc<str>, CacheOutcome), CompileError> {
    let key = request_key(l, m, cfg);
    if let Some(hit) = cache.lookup(key) {
        return Ok(hit);
    }
    let (c, report) = compile_checked(l, m, cfg)?;
    let body: Arc<str> = Arc::from(render_result(key, m, &c, &report));
    cache.insert(key, Arc::clone(&body));
    Ok((body, CacheOutcome::Compiled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Strategy;
    use sv_ir::{LoopBuilder, ScalarType};

    fn dot(name: &str) -> Loop {
        let mut b = LoopBuilder::new(name);
        b.trip(100);
        let x = b.array("x", ScalarType::F64, 128);
        let y = b.array("y", ScalarType::F64, 128);
        let lx = b.load(x, 1, 0);
        let ly = b.load(y, 1, 0);
        let m = b.fmul(lx, ly);
        b.reduce_add(m);
        b.finish()
    }

    #[test]
    fn memory_round_trip_and_counters() {
        let cache = CompileCache::in_memory();
        let m = MachineConfig::figure1();
        let cfg = DriverConfig::default();
        let l = dot("dot");
        let (cold, o1) = compile_cached(&l, &m, &cfg, &cache).unwrap();
        assert_eq!(o1, CacheOutcome::Compiled);
        let (warm, o2) = compile_cached(&l, &m, &cfg, &cache).unwrap();
        assert_eq!(o2, CacheOutcome::Memory);
        assert_eq!(cold, warm, "warm result must be byte-identical");
        let st = cache.stats();
        assert_eq!(st.mem_hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.entries, 1);
        assert!(st.bytes > 0);
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_separates_machines_configs_and_loops() {
        let l = dot("dot");
        let cfg = DriverConfig::default();
        let paper = MachineConfig::paper_default();
        let fig1 = MachineConfig::figure1();
        assert_ne!(request_key(&l, &paper, &cfg), request_key(&l, &fig1, &cfg));
        let full = DriverConfig::for_strategy(Strategy::Full);
        assert_ne!(request_key(&l, &paper, &cfg), request_key(&l, &paper, &full));
        assert_ne!(request_key(&l, &paper, &cfg), request_key(&dot("dot2"), &paper, &cfg));
    }

    #[test]
    fn key_separates_predicated_loop_from_select_free_cousin() {
        // A clip kernel and its select-free cousin (identical loads and
        // store, no cmp/select between them) must never share a cache
        // entry: the predicated ops are part of the loop's canonical
        // form, so the v3 keys differ.
        let clip = |predicated: bool| {
            let mut b = LoopBuilder::new("clip");
            b.trip(100);
            let x = b.array("x", ScalarType::F64, 128);
            let y = b.array("y", ScalarType::F64, 128);
            let lx = b.load(x, 1, 0);
            let v = if predicated {
                let c = b.cmp(
                    sv_ir::CmpPred::Lt,
                    ScalarType::F64,
                    sv_ir::Operand::def(lx),
                    sv_ir::Operand::ConstF(1.0),
                );
                b.select(
                    ScalarType::F64,
                    sv_ir::Operand::def(c),
                    sv_ir::Operand::def(lx),
                    sv_ir::Operand::ConstF(1.0),
                )
            } else {
                lx
            };
            b.store(y, 1, 0, v);
            b.finish()
        };
        let m = MachineConfig::paper_default();
        let cfg = DriverConfig::default();
        assert_ne!(
            request_key(&clip(true), &m, &cfg),
            request_key(&clip(false), &m, &cfg)
        );
    }

    #[test]
    fn v3_keys_differ_from_v2_for_identical_requests() {
        // The schema bump alone must invalidate every v2 entry: the same
        // loop, machine and config hashed under the old tag may not
        // collide with today's key (old disk tiers describe results a v3
        // compiler would not reproduce — machines now carry select
        // dimensions).
        let l = dot("dot");
        let m = MachineConfig::paper_default();
        let cfg = DriverConfig::default();
        let v2 = l.canonical_hash(&["sv-core/cache/v2", &m.to_spec(), &cfg.canonical_encoding()]);
        assert_ne!(request_key(&l, &m, &cfg), v2);
    }

    #[test]
    fn key_separates_optimal_from_every_other_strategy() {
        // `optimal` can deliver a different schedule than `selective` for
        // the same loop, so its cache key must be distinct from every
        // other strategy's (the canonical encoding carries
        // `Strategy::canonical_name`).
        let l = dot("dot");
        let paper = MachineConfig::paper_default();
        let opt = DriverConfig::for_strategy(Strategy::Optimal);
        let opt_key = request_key(&l, &paper, &opt);
        for s in Strategy::ALL {
            if s == Strategy::Optimal {
                continue;
            }
            let other = DriverConfig::for_strategy(s);
            assert_ne!(
                opt_key,
                request_key(&l, &paper, &other),
                "optimal key collides with {s}"
            );
        }
        assert!(opt.canonical_encoding().contains("optimal"));
    }

    #[test]
    fn lru_evicts_by_entry_budget() {
        let cache = CompileCache::new(CacheConfig {
            mem_entries: 2,
            mem_bytes: usize::MAX >> 1,
            shards: 1,
            disk_dir: None,
            faults: None,
        })
        .unwrap();
        for i in 0..3 {
            cache.insert(CanonicalHash(i), Arc::from(format!("body{i}").as_str()));
        }
        let st = cache.stats();
        assert_eq!(st.entries, 2);
        assert_eq!(st.evictions, 1);
        // Key 0 was least recently used and must be gone; 1 and 2 remain.
        assert!(cache.lookup(CanonicalHash(0)).is_none());
        assert!(cache.lookup(CanonicalHash(1)).is_some());
        assert!(cache.lookup(CanonicalHash(2)).is_some());
    }

    #[test]
    fn lru_touch_refreshes_recency() {
        let cache = CompileCache::new(CacheConfig {
            mem_entries: 2,
            mem_bytes: usize::MAX >> 1,
            shards: 1,
            disk_dir: None,
            faults: None,
        })
        .unwrap();
        cache.insert(CanonicalHash(1), Arc::from("a"));
        cache.insert(CanonicalHash(2), Arc::from("b"));
        assert!(cache.lookup(CanonicalHash(1)).is_some()); // 1 now MRU
        cache.insert(CanonicalHash(3), Arc::from("c")); // evicts 2
        assert!(cache.lookup(CanonicalHash(1)).is_some());
        assert!(cache.lookup(CanonicalHash(2)).is_none());
        assert!(cache.lookup(CanonicalHash(3)).is_some());
    }

    #[test]
    fn byte_budget_evicts_but_keeps_newest() {
        let cache = CompileCache::new(CacheConfig {
            mem_entries: usize::MAX >> 1,
            mem_bytes: 2 * (ENTRY_OVERHEAD + 8),
            shards: 1,
            disk_dir: None,
            faults: None,
        })
        .unwrap();
        cache.insert(CanonicalHash(1), Arc::from("12345678"));
        cache.insert(CanonicalHash(2), Arc::from("12345678"));
        assert_eq!(cache.stats().entries, 2);
        // A huge entry exceeds the whole budget alone but must survive.
        cache.insert(CanonicalHash(3), Arc::from("x".repeat(4096).as_str()));
        let st = cache.stats();
        assert_eq!(st.entries, 1);
        assert!(cache.lookup(CanonicalHash(3)).is_some());
    }

    #[test]
    fn disk_entry_validation_rejects_tampering() {
        let key = CanonicalHash(42);
        let good = render_disk_entry(key, "hello world");
        assert_eq!(validate_disk_entry(&good, key).unwrap(), "hello world");
        // Wrong expected key.
        assert!(validate_disk_entry(&good, CanonicalHash(43)).is_err());
        // Flipped body byte.
        let bad = good.replace("hello", "jello");
        assert!(validate_disk_entry(&bad, key).is_err());
        // Truncation.
        assert!(validate_disk_entry(&good[..good.len() - 1], key).is_err());
        // Garbage.
        assert!(validate_disk_entry("nonsense", key).is_err());
    }

    #[test]
    fn render_result_is_deterministic_single_line_json() {
        let l = dot("dot");
        let m = MachineConfig::figure1();
        let cfg = DriverConfig::default();
        let key = request_key(&l, &m, &cfg);
        let (c, report) = compile_checked(&l, &m, &cfg).unwrap();
        let a = render_result(key, &m, &c, &report);
        // A second compile renders byte-identically: no wall-clock fields.
        let (c2, report2) = compile_checked(&l, &m, &cfg).unwrap();
        assert_eq!(a, render_result(key, &m, &c2, &report2));
        assert!(!a.contains('\n'), "single line: {a}");
        assert!(a.contains("\"ii_per_orig\":1.0000"), "{a}");
        assert!(a.contains("\"dump\":\"loop "), "{a}");
        // The dump re-parses.
        let dump_at = a.find("\"dump\":\"").unwrap() + 8;
        let dump_end = a[dump_at..].find("\",\"").unwrap() + dump_at;
        let dump = a[dump_at..dump_end].replace("\\n", "\n").replace("\\\"", "\"");
        sv_ir::parse_loop(&dump).expect("segment dump re-parses");
    }
}
