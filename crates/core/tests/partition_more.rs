//! Additional partitioner behaviour tests: communication accounting,
//! alignment accounting, and the Figure 2 mechanics.

use sv_analysis::DepGraph;
use sv_core::{compile, partition_ops, SelectiveConfig, Strategy};
use sv_ir::{Loop, LoopBuilder, OpKind, ScalarType};
use sv_machine::{AlignmentPolicy, CommModel, MachineConfig};

fn run(l: &Loop, m: &MachineConfig, cfg: &SelectiveConfig) -> sv_core::PartitionResult {
    let g = DepGraph::build(l);
    partition_ops(l, &g, m, cfg)
}

/// A chain whose middle is vectorizable but whose memory ends are not:
/// the classic communication-cost trap.
fn strided_chain(arith: usize) -> Loop {
    let mut b = LoopBuilder::new("chain");
    let x = b.array("x", ScalarType::F64, 512);
    let y = b.array("y", ScalarType::F64, 512);
    let lx = b.load(x, 2, 0);
    let mut v = lx;
    for _ in 0..arith {
        v = b.fmul(v, v);
    }
    b.store(y, 2, 0, v);
    b.finish()
}

#[test]
fn communication_cost_flips_the_decision_with_chain_length() {
    let m = MachineConfig::paper_default();
    let cfg = SelectiveConfig::default();
    // Short chain: 2 transfers dwarf the gain — stay scalar.
    let short = run(&strided_chain(2), &m, &cfg);
    assert!(short.partition.iter().all(|&v| !v), "{:?}", short.partition);
    // Long chain: 14 fp ops × 2 lanes = 14 cycles/unit scalar; offloading
    // to the vector unit is worth two transfers.
    let long = run(&strided_chain(14), &m, &cfg);
    assert!(long.partition.iter().any(|&v| v), "{:?}", long.partition);
}

#[test]
fn free_communication_vectorizes_the_short_chain_too() {
    let mut m = MachineConfig::paper_default();
    m.comm = CommModel::Free;
    let cfg = SelectiveConfig::default();
    let short = run(&strided_chain(6), &m, &cfg);
    assert!(short.partition.iter().any(|&v| v));
}

#[test]
fn misalignment_charges_reduce_vectorized_memory() {
    // A pure-copy loop: 4 loads + 4 stores. Aligned, vectorizing all
    // memory halves the mem-unit load. Misaligned, 8 merges hit the single
    // merge unit — the partitioner must vectorize fewer refs.
    let mut b = LoopBuilder::new("copy4");
    let x = b.array("x", ScalarType::F64, 512);
    let y = b.array("y", ScalarType::F64, 512);
    for i in 0..4 {
        let l = b.load(x, 1, i);
        b.store(y, 1, i, l);
    }
    let l = b.finish();

    let mut aligned = MachineConfig::paper_default();
    aligned.alignment = AlignmentPolicy::AssumeAligned;
    let misaligned = MachineConfig::paper_default();
    let cfg = SelectiveConfig::default();

    let ra = run(&l, &aligned, &cfg);
    let rm = run(&l, &misaligned, &cfg);
    let count = |r: &sv_core::PartitionResult| r.partition.iter().filter(|&&v| v).count();
    assert!(count(&ra) > count(&rm), "aligned {:?} vs misaligned {:?}", ra.partition, rm.partition);
    assert!(ra.cost <= rm.cost);
}

#[test]
fn moves_evaluated_scales_with_vectorizable_ops() {
    let m = MachineConfig::paper_default();
    let cfg = SelectiveConfig::default();
    let small = run(&strided_chain(2), &m, &cfg);
    let big = run(&strided_chain(12), &m, &cfg);
    assert!(big.moves_evaluated > small.moves_evaluated);
}

#[test]
fn cost_equals_scheduled_resmii_for_workloads() {
    let m = MachineConfig::paper_default();
    for suite in sv_workloads::all_benchmarks().iter().take(2) {
        for l in &suite.loops {
            let c = compile(l, &m, Strategy::Selective).unwrap();
            let p = c.partition.as_ref().unwrap();
            assert_eq!(
                p.cost, c.segments[0].schedule.resmii,
                "{}: partitioner cost vs scheduler ResMII",
                l.name
            );
        }
    }
}

#[test]
fn all_scalar_on_vectorless_machine() {
    // Zero vector units: any vector arithmetic would have no home; the
    // partitioner must keep arithmetic scalar (memory ops could still
    // vectorize in principle, but transfers make that useless here).
    let mut m = MachineConfig::paper_default();
    m.vector_units = 0;
    let mut b = LoopBuilder::new("t");
    let x = b.array("x", ScalarType::F64, 128);
    let y = b.array("y", ScalarType::F64, 128);
    let lx = b.load(x, 1, 0);
    let s = b.fmul(lx, lx);
    b.store(y, 1, 0, s);
    let l = b.finish();
    let r = run(&l, &m, &SelectiveConfig::default());
    assert!(!r.partition[s.index()], "no vector unit to run the multiply");
}

#[test]
fn reduction_input_stream_vectorizes_when_wide_enough() {
    // nasa7's mxm shape at scale: the reduction pins RecMII, but the
    // partitioner still offloads the loads/multiplies when the memory
    // side saturates — mirroring the paper's selective win on loops whose
    // parallel part is big enough.
    let mut b = LoopBuilder::new("bigdot");
    let x = b.array("x", ScalarType::F64, 512);
    let y = b.array("y", ScalarType::F64, 512);
    let mut acc = None;
    for i in 0..4 {
        let lx = b.load(x, 1, i);
        let ly = b.load(y, 1, i);
        let m1 = b.fmul(lx, ly);
        acc = Some(match acc {
            None => m1,
            Some(p) => b.fadd(p, m1),
        });
    }
    b.reduce(OpKind::Add, ScalarType::F64, acc.unwrap());
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let r = run(&l, &m, &SelectiveConfig::default());
    let base = compile(&l, &m, Strategy::ModuloOnly).unwrap();
    let sel = compile(&l, &m, Strategy::Selective).unwrap();
    assert!(
        sel.segments[0].schedule.resmii <= base.segments[0].schedule.resmii,
        "selective {:?} vs baseline",
        r.partition
    );
}
