//! Heuristic quality: compare the Kernighan–Lin partitioner against the
//! exhaustively optimal partition on small loops. The paper argues KL is
//! "an intuitive match" for the two-partition problem; these tests measure
//! how closely it tracks the true optimum of its own cost function.

use sv_analysis::{vectorizable_ops, DepGraph};
use sv_core::{compile, partition_ops, SelectiveConfig, Strategy};
use sv_ir::Loop;
use sv_machine::MachineConfig;
use sv_workloads::{synth_loop, SynthProfile};

/// The greedy-bin-pack cost of an explicit partition, computed through the
/// public pipeline (transform → scheduler ResMII) so the oracle and the
/// partitioner share one cost definition.
fn cost_of(l: &Loop, m: &MachineConfig, part: &[bool]) -> u32 {
    let t = sv_vectorize::transform(l, m, part);
    sv_modsched::compute_resmii(&t.looop, m)
}

fn optimal_cost(l: &Loop, m: &MachineConfig) -> u32 {
    let g = DepGraph::build(l);
    let legal: Vec<usize> = vectorizable_ops(l, &g, m.vector_length)
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_vectorizable())
        .map(|(i, _)| i)
        .collect();
    assert!(legal.len() <= 12, "exhaustive search bound");
    let mut best = u32::MAX;
    for mask in 0u32..(1 << legal.len()) {
        let mut part = vec![false; l.ops.len()];
        for (bit, &op) in legal.iter().enumerate() {
            part[op] = mask & (1 << bit) != 0;
        }
        best = best.min(cost_of(l, m, &part));
    }
    best
}

#[test]
fn kl_matches_the_exhaustive_optimum_on_small_loops() {
    let m = MachineConfig::paper_default();
    let profile = SynthProfile {
        loads: (2, 4),
        arith: (1, 5),
        stores: (1, 2),
        nonunit_prob: 0.2,
        reduction_prob: 0.3,
        reassoc: false,
        recurrence_prob: 0.2,
        div_prob: 0.05,
        carried_prob: 0.1,
        cmp_select_prob: 0.1,
        trip: (64, 64),
        invocations: (1, 1),
    };
    let mut optimal_hits = 0;
    let mut total = 0;
    let mut worst_gap = 0i64;
    for seed in 0..40u64 {
        let l = synth_loop("opt", &profile, seed);
        let g = DepGraph::build(&l);
        let legal = vectorizable_ops(&l, &g, m.vector_length);
        if legal.iter().filter(|s| s.is_vectorizable()).count() > 12 {
            continue;
        }
        let kl = partition_ops(&l, &g, &m, &SelectiveConfig::default());
        let opt = optimal_cost(&l, &m);
        assert!(
            kl.cost >= opt,
            "seed {seed}: KL {} below the optimum {opt}?!",
            kl.cost
        );
        worst_gap = worst_gap.max(i64::from(kl.cost) - i64::from(opt));
        total += 1;
        if kl.cost == opt {
            optimal_hits += 1;
        }
    }
    assert!(total >= 25, "too few exhaustively-checkable loops: {total}");
    // KL should find the true optimum almost always on loops this small,
    // and never be far off.
    assert!(
        optimal_hits * 10 >= total * 9,
        "KL optimal on only {optimal_hits}/{total} loops"
    );
    assert!(worst_gap <= 2, "worst KL gap {worst_gap} cycles");
}

#[test]
fn figure1_partition_is_globally_optimal() {
    let m = MachineConfig::figure1();
    let l = sv_workloads::figure1_dot_product();
    let g = DepGraph::build(&l);
    let kl = partition_ops(&l, &g, &m, &SelectiveConfig::default());
    assert_eq!(kl.cost, optimal_cost(&l, &m));
    // And the scheduler achieves it.
    let c = compile(&l, &m, Strategy::Selective).unwrap();
    assert_eq!(f64::from(kl.cost), 2.0 * c.ii_per_original_iteration());
}
