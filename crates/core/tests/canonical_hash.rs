//! Property tests for the cache key ([`sv_core::request_key`] over
//! [`sv_ir::CanonicalHash`]):
//!
//! * **round-trip stability** — the key is invariant under display →
//!   parse → display normalization for every suite loop and a seeded
//!   population of synthetic loops (the cache must hit when a client
//!   re-sends a loop it previously received as text);
//! * **sensitivity** — the key changes when the machine description or
//!   any [`DriverConfig`] knob changes (the cache must never serve a
//!   result computed under different settings).

use sv_core::{request_key, DriverConfig, SelectiveConfig, Strategy};
use sv_ir::{parse_loop, Loop};
use sv_machine::MachineConfig;
use sv_workloads::{all_benchmarks, synth_loop, SynthProfile};

/// Suite loops plus 100 seeded broad synthetic loops.
fn population() -> Vec<Loop> {
    let mut out: Vec<Loop> =
        all_benchmarks().into_iter().flat_map(|s| s.loops).collect();
    let profile = SynthProfile::broad();
    for seed in 0..100 {
        out.push(synth_loop(&format!("hashprop.{seed}"), &profile, seed));
    }
    out
}

#[test]
fn canonical_hash_survives_display_parse_round_trip() {
    let m = MachineConfig::paper_default();
    let cfg = DriverConfig::default();
    for l in population() {
        let text = l.to_string();
        let reparsed = parse_loop(&text)
            .unwrap_or_else(|e| panic!("{}: display form must re-parse: {e}", l.name));
        assert_eq!(
            request_key(&l, &m, &cfg),
            request_key(&reparsed, &m, &cfg),
            "{}: key must be invariant under display→parse round trip",
            l.name
        );
        // And a second round trip is a fixed point.
        let again = parse_loop(&reparsed.to_string()).expect("second round trip");
        assert_eq!(request_key(&reparsed, &m, &cfg), request_key(&again, &m, &cfg));
    }
}

#[test]
fn canonical_hash_distinguishes_loops() {
    let m = MachineConfig::paper_default();
    let cfg = DriverConfig::default();
    let pop = population();
    let mut keys = std::collections::HashSet::new();
    for l in &pop {
        keys.insert(request_key(l, &m, &cfg).0);
    }
    // Synthetic seeds can collide structurally, but the overwhelming
    // majority of a 400+ loop population must hash distinctly.
    assert!(
        keys.len() as f64 >= pop.len() as f64 * 0.95,
        "only {} distinct keys over {} loops",
        keys.len(),
        pop.len()
    );
}

#[test]
fn key_is_invariant_under_spec_reformatting() {
    // Two spec texts that differ in whitespace, comments and key order but
    // parse to equal machines must produce byte-identical request keys for
    // every loop in the population — the invariance the v2 key schema
    // exists to guarantee (and that ci.sh's named-vs-inline loadgen gate
    // checks end to end through the disk cache).
    let tidy = MachineConfig::paper_default().to_spec();
    let mut lines: Vec<String> = tidy
        .lines()
        .map(|l| format!("\t{}   # same value, uglier line", l.replace(" = ", "=")))
        .collect();
    lines.reverse();
    let ugly = format!("# reformatted copy of the paper machine\n\n{}\n", lines.join("\n\n"));
    let m1 = MachineConfig::from_spec(&tidy).expect("canonical spec parses");
    let m2 = MachineConfig::from_spec(&ugly).expect("reformatted spec parses");
    assert_eq!(m1, m2);
    let cfg = DriverConfig::default();
    for l in population() {
        assert_eq!(
            request_key(&l, &m1, &cfg),
            request_key(&l, &m2, &cfg),
            "{}: equal machines from differently formatted specs must share a key",
            l.name
        );
    }
}

#[test]
fn key_changes_with_machine_and_every_driver_knob() {
    let l = &all_benchmarks()[0].loops[0];
    let base_m = MachineConfig::paper_default();
    let base = DriverConfig::default();
    let base_key = request_key(l, &base_m, &base);

    assert_ne!(
        base_key,
        request_key(l, &MachineConfig::figure1(), &base),
        "machine spec must be part of the key"
    );

    // Every DriverConfig knob, flipped one at a time off the default.
    let variants: Vec<(&str, DriverConfig)> = vec![
        ("strategy", DriverConfig { strategy: Strategy::Full, ..base.clone() }),
        (
            "selective.account_communication",
            DriverConfig {
                selective: SelectiveConfig {
                    account_communication: !base.selective.account_communication,
                    ..base.selective.clone()
                },
                ..base.clone()
            },
        ),
        (
            "selective.squares_tiebreak",
            DriverConfig {
                selective: SelectiveConfig {
                    squares_tiebreak: !base.selective.squares_tiebreak,
                    ..base.selective.clone()
                },
                ..base.clone()
            },
        ),
        (
            "selective.pressure_aware",
            DriverConfig {
                selective: SelectiveConfig {
                    pressure_aware: !base.selective.pressure_aware,
                    ..base.selective.clone()
                },
                ..base.clone()
            },
        ),
        (
            "selective.max_iterations",
            DriverConfig {
                selective: SelectiveConfig {
                    max_iterations: Some(base.selective.max_iterations.unwrap_or(100) + 1),
                    ..base.selective.clone()
                },
                ..base.clone()
            },
        ),
        (
            "selective.max_moves",
            DriverConfig {
                selective: SelectiveConfig {
                    max_moves: Some(base.selective.max_moves.unwrap_or(1000) + 1),
                    ..base.selective.clone()
                },
                ..base.clone()
            },
        ),
        ("schedule.budget_ratio", {
            let mut c = base.clone();
            c.schedule.budget_ratio += 1;
            c
        }),
        ("schedule.max_ii_slack", {
            let mut c = base.clone();
            c.schedule.max_ii_slack += 1;
            c
        }),
        (
            "verify_boundaries",
            DriverConfig { verify_boundaries: !base.verify_boundaries, ..base.clone() },
        ),
        ("degrade", DriverConfig { degrade: !base.degrade, ..base.clone() }),
        ("catch_panics", DriverConfig { catch_panics: !base.catch_panics, ..base.clone() }),
    ];
    for (knob, cfg) in variants {
        assert_ne!(
            base_key,
            request_key(l, &base_m, &cfg),
            "flipping `{knob}` must change the cache key"
        );
    }
}
