//! # selvec — selective vectorization for software pipelined loops
//!
//! A from-scratch Rust reproduction of *Exploiting Vector Parallelism in
//! Software Pipelined Loops* (Larsen, Rabbah, Amarasinghe — MICRO 2005).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`ir`] — the low-level loop IR (operations, affine memory references,
//!   reductions, loop metadata);
//! * [`machine`] — the parametric VLIW machine model (paper Table 1);
//! * [`analysis`] — loop dependence analysis, SCCs, vectorizability;
//! * [`modsched`] — Rau's iterative modulo scheduler;
//! * [`vectorize`] — traditional and full vectorization plus the shared
//!   loop transformer;
//! * [`core`] — the paper's contribution: the selective-vectorization
//!   partitioner and the end-to-end compilation pipeline;
//! * [`sim`] — functional and cycle-level simulation of compiled loops;
//! * [`serve`] — the cache-fronted batched compilation service behind
//!   the `svd` daemon;
//! * [`workloads`] — the SPEC-FP-substitute benchmark suites.
//!
//! ## Quickstart
//!
//! ```
//! use selvec::core::{compile, Strategy};
//! use selvec::machine::MachineConfig;
//! use selvec::workloads::figure1_dot_product;
//!
//! let machine = MachineConfig::figure1();
//! let looop = figure1_dot_product();
//! let compiled = compile(&looop, &machine, Strategy::Selective).unwrap();
//! // The paper's headline: selective vectorization reaches II = 1.0.
//! assert_eq!(compiled.ii_per_original_iteration(), 1.0);
//! ```

pub use sv_analysis as analysis;
pub use sv_core as core;
pub use sv_ir as ir;
pub use sv_machine as machine;
pub use sv_modsched as modsched;
pub use sv_serve as serve;
pub use sv_sim as sim;
pub use sv_vectorize as vectorize;
pub use sv_workloads as workloads;
