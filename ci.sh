#!/usr/bin/env bash
# CI gate: build, full test suite, lints, a differential-fuzz smoke run
# sharded across the machine's cores, and a serial-vs-parallel harness
# determinism check. Everything is offline and deterministic; any failure
# fails the script.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 1)"

cargo build --release --workspace
cargo test --workspace
cargo clippy --workspace --all-targets -- -D warnings
# The fuzzer sweeps every generator profile per seed — including the
# `predicated` profile (dense if-converted cmp+select chains), so each
# fuzz block below is also a 100+-seed predicated sweep.
cargo run --release -p sv-bench --bin fuzz -- --seeds 0..200 --fail-fast --jobs "$JOBS"

# Engine self-check: every compiled case executed on both the fast
# pre-decoded engine and the reference interpreters must agree bit for
# bit.
cargo run --release -p sv-bench --bin fuzz -- --seeds 0..100 --oracle-selfcheck --fail-fast --jobs "$JOBS"

# Executed-schedule gate: the slot-accurate VLIW executor replays every
# compiled piece's flat layout cycle by cycle; final state must be
# bit-identical to the reference engine and the measured steady-state
# cycles/iteration must equal the scheduled II (zero interlock stalls).
# Three layers: the equivalence suite (200 seeded loops x 7 strategies x
# 3 registry machines plus the benchmark kernels and the found-bug
# regressions), a 100-seed fuzz pass, and the full-registry sweep whose
# bytes are pinned by the table_executed.txt golden (any VIOLATION line
# fails the test).
cargo test --release -p sv-sim --test sched_exec_equiv
cargo run --release -p sv-bench --bin fuzz -- --seeds 0..100 --executed-selfcheck --fail-fast --jobs "$JOBS"
# The same executed gate swept over the select-capacity registry
# machines (selcheap/selslow), exercising shared select units at both
# extremes of latency and bandwidth.
cargo run --release -p sv-bench --bin fuzz -- --seeds 0..100 --executed-selfcheck --fail-fast --jobs "$JOBS" --machines examples/machines
cargo test --release -p sv-bench --test golden table_executed_matches_golden
echo "ci: executed schedules bit-identical at scheduled II (equiv suite + fuzz + registry sweep)"

# Optimality gate: the branch-and-bound oracle must prove a minimum II
# for every suite loop on the paper and vl4 machines within the default
# budget (zero `exhausted`), every proved schedule must sustain its II on
# the cycle-accurate executor, and the committed gap table — the loops
# where the exact search beats the KL heuristic — must not drift (the
# table_optimality.txt golden pins it byte for byte). A 100-seed fuzz
# block cross-checks oracle vs heuristic vs driver vs executed II on
# synthetic loops.
cargo run --release -p sv-bench --bin fuzz -- --seeds 0..100 --optimal-selfcheck --fail-fast --jobs "$JOBS"
cargo test --release -p sv-bench --test golden table_optimality_matches_golden
cargo test --release -p sv-analysis --test optimal
echo "ci: oracle proved every suite loop on paper+vl4; gap table unchanged"

# Simulator performance gate: a fresh simbench run must stay within 25%
# of the committed BENCH_sim.json baseline (per-engine suite medians).
mkdir -p target/ci-bench
cargo run --release -p sv-bench --bin simbench -- --out target/ci-bench/BENCH_sim.json --check BENCH_sim.json
echo "ci: simbench within tolerance of committed baseline"

# Compilation service gate: replay a fixed loadgen trace through svd
# twice against one disk cache. The second pass must serve >=90% from
# the cache and every non-stats response must be byte-identical.
SERVE="target/ci-serve"
rm -rf "$SERVE"
mkdir -p "$SERVE"
cargo run --release -q -p sv-bench --bin loadgen -- --emit-trace "$SERVE/trace.jsonl" --synth 8
cargo run --release -q -p sv-serve --bin svd -- --disk "$SERVE/cache" < "$SERVE/trace.jsonl" > "$SERVE/pass1.jsonl"
cargo run --release -q -p sv-serve --bin svd -- --disk "$SERVE/cache" < "$SERVE/trace.jsonl" > "$SERVE/pass2.jsonl"
diff <(grep -v '"cache":{' "$SERVE/pass1.jsonl") <(grep -v '"cache":{' "$SERVE/pass2.jsonl")
grep '"cache":{' "$SERVE/pass2.jsonl" \
  | sed 's/.*"mem_hits":\([0-9]*\),"disk_hits":\([0-9]*\),"misses":\([0-9]*\).*/\1 \2 \3/' \
  | awk '{ hits = $1 + $2; total = hits + $3;
           if (total == 0 || hits / total < 0.9) {
             printf "ci: serve replay hit rate %d/%d below 90%%\n", hits, total; exit 1
           }
           printf "ci: serve replay pass 2 served %d/%d from cache\n", hits, total }'
echo "ci: serve replay byte-identical across cache-cold and cache-warm passes"

# Service performance gate (v3): warm-over-cold speedup and warm hit
# rate floors, the committed-overload phase (the server-hinted retry
# path must actually fire, give-up rate bounded), the multi-connection
# warm_mt phase (>=4 concurrent closed-loop clients), and the committed
# SLO in BENCH_serve.json — the fresh run must sustain the baseline's
# warm/warm_mt throughput floors and warm_mt p99 ceiling.
cargo run --release -q -p sv-bench --bin loadgen -- --out target/ci-serve/BENCH_serve.json --check BENCH_serve.json
echo "ci: loadgen cache + overload-retry + multi-connection SLO gate passed"

# Sharding gate: one loadgen trace replayed over TCP through a single
# svd and through a router over two svd shards (ephemeral ports, each
# request routed by its v2 canonical key hash). Every compile response
# must be byte-identical across all three runs — single, routed-cold,
# routed-warm: routing is cache locality, never semantics — and the warm
# routed pass must serve >=90% from the shards' caches (the per-shard
# stats prove the keyspace split sticks).
SHARD="target/ci-shard"
rm -rf "$SHARD"
mkdir -p "$SHARD"
SVD="target/release/svd"
LOADGEN="target/release/loadgen"
wait_port() {
  for _ in $(seq 100); do [ -s "$1" ] && return 0; sleep 0.1; done
  echo "ci: timed out waiting for $1"; return 1
}
"$LOADGEN" --emit-trace "$SHARD/trace.jsonl" --synth 8
grep -v '"verb":"stats"' "$SHARD/trace.jsonl" | grep -v '"verb":"shutdown"' > "$SHARD/core.jsonl"
"$SVD" --tcp 127.0.0.1:0 --port-file "$SHARD/single.port" 2> "$SHARD/single.log" &
wait_port "$SHARD/single.port"
"$LOADGEN" --replay "$SHARD/trace.jsonl" --server "$(cat "$SHARD/single.port")" > "$SHARD/single.jsonl"
"$SVD" --tcp 127.0.0.1:0 --port-file "$SHARD/s1.port" 2> "$SHARD/s1.log" &
"$SVD" --tcp 127.0.0.1:0 --port-file "$SHARD/s2.port" 2> "$SHARD/s2.log" &
wait_port "$SHARD/s1.port"
wait_port "$SHARD/s2.port"
"$SVD" --tcp 127.0.0.1:0 --route "$(cat "$SHARD/s1.port"),$(cat "$SHARD/s2.port")" \
  --port-file "$SHARD/router.port" 2> "$SHARD/router.log" &
wait_port "$SHARD/router.port"
"$LOADGEN" --replay "$SHARD/core.jsonl" --server "$(cat "$SHARD/router.port")" > "$SHARD/rout_cold.jsonl"
"$LOADGEN" --replay "$SHARD/core.jsonl" --server "$(cat "$SHARD/router.port")" > "$SHARD/rout_warm.jsonl"
echo '{"verb":"stats","id":1}' > "$SHARD/stats.jsonl"
"$LOADGEN" --replay "$SHARD/stats.jsonl" --server "$(cat "$SHARD/s1.port")" > "$SHARD/s1.stats"
"$LOADGEN" --replay "$SHARD/stats.jsonl" --server "$(cat "$SHARD/s2.port")" > "$SHARD/s2.stats"
echo '{"verb":"shutdown","id":2}' > "$SHARD/shut.jsonl"
"$LOADGEN" --replay "$SHARD/shut.jsonl" --server "$(cat "$SHARD/router.port")" > /dev/null
wait
diff <(grep -v '"cache":{' "$SHARD/single.jsonl" | grep -v '"shutdown"') "$SHARD/rout_cold.jsonl"
diff "$SHARD/rout_cold.jsonl" "$SHARD/rout_warm.jsonl"
cat "$SHARD/s1.stats" "$SHARD/s2.stats" \
  | sed 's/.*"mem_hits":\([0-9]*\),"disk_hits":\([0-9]*\),"misses":\([0-9]*\).*/\1 \2 \3/' \
  | awk '{ hits += $1 + $2; misses += $3 }
         END { total = hits + misses;
               if (total == 0 || 2 * hits / total < 0.9) {
                 printf "ci: sharded warm pass hit rate %d/%d below 90%%\n", hits, total / 2; exit 1
               }
               printf "ci: sharded warm pass served %d/%d from the shard caches\n", hits, total / 2 }'
echo "ci: 2-shard router byte-identical to single instance (cold and warm passes)"

# Chaos gate: seeded fault-injection soak over the full serving stack
# (disk faults, torn writes, compile panics, drainer deaths, stalls,
# connection drops, greedy client bursts). Asserts exactly-once
# responses — including across concurrently submitting fair-share
# clients — byte-identity of every ok against a fault-free control,
# daemon liveness, and crash-safe cache recovery, with per-class
# injection coverage across the soak.
cargo run --release -q -p sv-bench --bin chaos -- --seeds 0..200
echo "ci: chaos soak held every invariant across 200 seeds"

# Cache-key stability gate: one run naming the registered `paper` machine
# warms a disk cache and emits the resolved canonical spec; the spec is
# deliberately mangled (reversed lines, comment header, `=` spacing and
# trailing-whitespace noise) and a second run sends it inline with every
# request. Equal machines must yield equal request keys, so the second
# run's *cold* phase must serve >=99% from the first run's cache.
KEYSTAB="target/ci-keystab"
rm -rf "$KEYSTAB"
mkdir -p "$KEYSTAB"
cargo run --release -q -p sv-bench --bin loadgen -- --machine paper \
  --disk "$KEYSTAB/cache" --emit-machine-spec "$KEYSTAB/paper.spec" \
  --out "$KEYSTAB/BENCH_named.json"
{ echo "# mangled copy of the canonical paper spec"; \
  sed 's/ = /=/; s/$/ /' "$KEYSTAB/paper.spec" | tac; } > "$KEYSTAB/mangled.spec"
cargo run --release -q -p sv-bench --bin loadgen -- \
  --machine-spec "$KEYSTAB/mangled.spec" --disk "$KEYSTAB/cache" \
  --min-cold-hits 0.99 --out "$KEYSTAB/BENCH_inline.json"
echo "ci: named-vs-inline machine runs share one disk cache (request-key stability)"

# The harness determinism contract: sharding compilations over workers
# must not change a single output byte.
OUT="target/ci-determinism"
mkdir -p "$OUT"
cargo run --release -q -p sv-bench --bin table2 -- --jobs 1 > "$OUT/table2.serial.txt"
cargo run --release -q -p sv-bench --bin table2 -- --jobs 4 > "$OUT/table2.jobs4.txt"
diff -u "$OUT/table2.serial.txt" "$OUT/table2.jobs4.txt"
echo "ci: table2 byte-identical at --jobs 1 vs --jobs 4"

echo "ci: all gates passed"
