#!/usr/bin/env bash
# CI gate: build, full test suite, lints, and a differential-fuzz smoke
# run. Everything is offline and deterministic; any failure fails the
# script.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo run --release -p sv-bench --bin fuzz -- --seeds 0..200 --fail-fast

echo "ci: all gates passed"
