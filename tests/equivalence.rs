//! Integration test: every workload loop, compiled under every technique
//! on both machines, computes the same memory state and live-outs as the
//! scalar source loop, and every produced schedule validates.

use selvec::analysis::DepGraph;
use selvec::core::parallel::{default_jobs, run_ordered};
use selvec::core::{compile, Strategy};
use selvec::machine::MachineConfig;
use selvec::modsched::emit_flat;
use selvec::sim::{
    assert_equivalent, execute_flat, execute_loop, execute_pipelined,
    has_register_state_across_cleanup, validate_schedule, Memory,
};
use selvec::workloads::all_benchmarks;

/// Cap simulated work: equivalence runs one invocation, so only the trip
/// count matters; clamp huge-trip loops to keep the suite fast.
fn clamped(l: &selvec::ir::Loop) -> selvec::ir::Loop {
    let mut l = l.clone();
    if l.trip.count > 512 {
        l.trip.count = 509; // odd: exercises the cleanup path
    }
    l.invocations = 1;
    l
}

/// Every workload loop, clamped — the independent unit the sweep tests
/// fan out over the work pool (an assertion failure in a worker
/// propagates as the usual test panic).
fn all_clamped_loops() -> Vec<selvec::ir::Loop> {
    all_benchmarks()
        .iter()
        .flat_map(|s| s.loops.iter().map(clamped))
        .collect()
}

#[test]
fn all_workloads_equivalent_under_all_strategies() {
    let machines = [MachineConfig::paper_default(), MachineConfig::figure1()];
    let loops = all_clamped_loops();
    let counts = run_ordered(&loops, default_jobs(), |_, src| {
        let mut l = src.clone();
        // Register-carried state does not flow into cleanup loops in
        // this simulator (see sv-sim docs); use a remainder-free trip
        // for those loops.
        if has_register_state_across_cleanup(&l) {
            l.trip.count &= !3; // multiple of 4 covers VL 2 (and 4)
            if l.trip.count == 0 {
                l.trip.count = 4;
            }
        }
        let mut checked = 0u32;
        for machine in &machines {
            for strategy in Strategy::ALL {
                let compiled = compile(&l, machine, strategy)
                    .unwrap_or_else(|e| panic!("{}: {e}", l.name));
                assert_equivalent(&l, &compiled);
                checked += 1;
            }
        }
        checked
    });
    // 377 loops (Table 3 counts summed) × 2 machines × 7 strategies.
    assert_eq!(counts.iter().sum::<u32>(), 377 * 2 * 7);
}

#[test]
fn all_workload_schedules_validate() {
    let machine = MachineConfig::paper_default();
    let loops = all_clamped_loops();
    run_ordered(&loops, default_jobs(), |_, l| {
        for strategy in Strategy::ALL {
            let compiled = compile(l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let g = DepGraph::build(&seg.looop);
                validate_schedule(&seg.looop, &g, &machine, &seg.schedule)
                    .unwrap_or_else(|e| {
                        panic!("{} under {strategy}: {e}", seg.looop.name)
                    });
                if let Some((cl, cs)) = &seg.cleanup {
                    let g = DepGraph::build(cl);
                    validate_schedule(cl, &g, &machine, cs)
                        .unwrap_or_else(|e| panic!("{}: {e}", cl.name));
                }
            }
        }
    });
}

/// Execute every selective-compiled segment *as a pipeline* (each op
/// instance at its issue cycle, registers renamed per iteration, memory
/// touched in pipeline order) and require the same result as in-order
/// execution. This catches scheduler reorderings that structural
/// validation alone would miss.
#[test]
fn pipelined_execution_matches_in_order_execution() {
    let machine = MachineConfig::paper_default();
    let loops = all_clamped_loops();
    run_ordered(&loops, default_jobs(), |_, src| {
        let mut l = src.clone();
        l.trip.count = l.trip.count.clamp(8, 64);
        for strategy in [Strategy::ModuloOnly, Strategy::Selective] {
            let compiled = compile(&l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let n = seg.looop.executed_iterations();
                let mut mem_a = Memory::for_arrays(&seg.looop.arrays);
                let mut mem_b = mem_a.clone();
                let outs_a = execute_loop(&seg.looop, &mut mem_a, 0..n);
                let outs_b =
                    execute_pipelined(&seg.looop, &seg.schedule, &mut mem_b, n);
                for i in 0..seg.looop.arrays.len() as u32 {
                    for (e, (va, vb)) in
                        mem_a.array(i).iter().zip(mem_b.array(i)).enumerate()
                    {
                        assert!(
                            va.approx_eq(*vb),
                            "{} under {strategy}: array {i}[{e}]",
                            seg.looop.name
                        );
                    }
                }
                for (a, b) in outs_a.iter().zip(&outs_b) {
                    assert!(
                        a.value.approx_eq(b.value),
                        "{} under {strategy}: live-out {}",
                        seg.looop.name,
                        a.name
                    );
                }
            }
        }
    });
}

/// The emitted flat prologue/kernel/epilogue layout, executed as written,
/// computes the same result as in-order execution for a sample of
/// workload loops.
#[test]
fn flat_layouts_execute_correctly() {
    let machine = MachineConfig::paper_default();
    for suite in all_benchmarks().iter().take(4) {
        for src in suite.loops.iter().take(6) {
            let l = clamped(src);
            let compiled = compile(&l, &machine, Strategy::Selective).unwrap();
            for seg in &compiled.segments {
                let flat = emit_flat(&seg.looop, &seg.schedule);
                let n = u64::from(flat.stage_count) + 13;
                let mut mem_a = Memory::for_arrays(&seg.looop.arrays);
                let mut mem_b = mem_a.clone();
                execute_loop(&seg.looop, &mut mem_a, 0..n);
                execute_flat(&seg.looop, &flat, &mut mem_b, n);
                for i in 0..seg.looop.arrays.len() as u32 {
                    for (e, (va, vb)) in
                        mem_a.array(i).iter().zip(mem_b.array(i)).enumerate()
                    {
                        assert!(va.approx_eq(*vb), "{}: array {i}[{e}]", seg.looop.name);
                    }
                }
            }
        }
    }
}

#[test]
fn schedules_meet_their_lower_bounds() {
    let machine = MachineConfig::paper_default();
    let loops = all_clamped_loops();
    let tallies = run_ordered(&loops, default_jobs(), |_, l| {
        let mut at_mii = 0usize;
        let mut total = 0usize;
        let compiled = compile(l, &machine, Strategy::Selective).unwrap();
        for seg in &compiled.segments {
            let s = &seg.schedule;
            assert!(s.ii >= s.resmii.max(s.recmii));
            total += 1;
            if s.ii == s.resmii.max(s.recmii) {
                at_mii += 1;
            }
        }
        (at_mii, total)
    });
    let at_mii: usize = tallies.iter().map(|t| t.0).sum();
    let total: usize = tallies.iter().map(|t| t.1).sum();
    // Iterative modulo scheduling reaches MII nearly always (Rau reports
    // > 96%); require a strong majority here.
    assert!(
        at_mii * 100 >= total * 90,
        "only {at_mii}/{total} schedules met MII"
    );
}
