//! Failure injection: deliberately corrupt intermediate artifacts and
//! assert the checking layers catch them. A validator that never fires is
//! indistinguishable from no validator.

use selvec::analysis::DepGraph;
use selvec::core::{
    compile, compile_checked, CompileError, DriverConfig, Pass, SelectiveConfig, Strategy,
};
use selvec::ir::{LoopBuilder, OpKind, Operand, ScalarType};
use selvec::machine::MachineConfig;
use selvec::sim::{
    execute_loop, execute_pipelined, validate_schedule, Memory, ValidationError,
};
use selvec::vectorize::{transform, try_transform, TransformError};

fn sample() -> selvec::ir::Loop {
    let mut b = LoopBuilder::new("sample");
    b.trip(40);
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let m = b.fmul(lx, lx);
    let a = b.fadd(m, lx);
    b.store(y, 1, 0, a);
    b.finish()
}

#[test]
fn shifting_a_consumer_breaks_validation() {
    let l = sample();
    let m = MachineConfig::paper_default();
    let c = compile(&l, &m, Strategy::ModuloOnly).unwrap();
    let seg = &c.segments[0];
    let g = DepGraph::build(&seg.looop);
    let mut s = seg.schedule.clone();
    // Pull every op to cycle 0: the multiply now issues before its load
    // completes.
    for t in s.times.iter_mut() {
        *t = 0;
    }
    assert!(matches!(
        validate_schedule(&seg.looop, &g, &m, &s),
        Err(ValidationError::DependenceViolated { .. })
            | Err(ValidationError::ResourceConflict { .. })
    ));
}

#[test]
fn duplicating_an_assignment_breaks_validation() {
    let l = sample();
    let m = MachineConfig::paper_default();
    let c = compile(&l, &m, Strategy::ModuloOnly).unwrap();
    let seg = &c.segments[0];
    let g = DepGraph::build(&seg.looop);
    let mut s = seg.schedule.clone();
    // Give op 1 op 0's functional units and time: double booking.
    s.assignments[1] = s.assignments[0].clone();
    s.times[1] = s.times[0];
    assert!(validate_schedule(&seg.looop, &g, &m, &s).is_err());
}

/// A loop whose only legal form keeps the carried-use consumer scalar:
/// vectorizing everything is a corrupted partition.
fn misaligned_carried() -> selvec::ir::Loop {
    let mut b = LoopBuilder::new("carried");
    let x = b.array("x", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let u = b.bin(
        OpKind::Add,
        ScalarType::F64,
        Operand::def(lx),
        Operand::carried(lx, 1),
    );
    b.store(x, 1, 8, u);
    b.finish()
}

#[test]
fn illegal_partition_is_rejected_by_the_transformer() {
    // Vector consumer of a carried use at distance 1 (not a multiple of
    // VL): the transformer must diagnose it as a typed error...
    let l2 = misaligned_carried();
    let m = MachineConfig::paper_default();
    let err = try_transform(&l2, &m, &vec![true; l2.ops().len()])
        .expect_err("misaligned carried use must be rejected");
    assert!(
        matches!(err, TransformError::MisalignedCarriedUse { distance: 1, .. }),
        "{err}"
    );
    // ...and the legacy panicking wrapper must preserve the diagnosis.
    let result =
        std::panic::catch_unwind(|| transform(&l2, &m, &vec![true; l2.ops().len()]));
    assert!(result.is_err(), "misaligned carried use must be rejected");
}

#[test]
fn non_unit_stride_vector_mem_is_rejected() {
    let mut b = LoopBuilder::new("strided");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 2, 0);
    b.store(y, 1, 0, lx);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let err = try_transform(&l, &m, &vec![true; l.ops().len()])
        .expect_err("strided vector memory must be rejected");
    assert!(matches!(err, TransformError::NotUnitStride { stride: 2, .. }), "{err}");
    let result = std::panic::catch_unwind(|| transform(&l, &m, &vec![true; l.ops().len()]));
    assert!(result.is_err(), "strided vector memory must be rejected");
}

#[test]
fn kl_budget_exhaustion_falls_back_selective_to_full() {
    // A one-probe KL budget cannot cover sample()'s movable ops: the
    // driver must abandon Selective, record why, and deliver Full.
    let l = sample();
    let m = MachineConfig::paper_default();
    let cfg = DriverConfig {
        strategy: Strategy::Selective,
        selective: SelectiveConfig { max_moves: Some(1), ..SelectiveConfig::default() },
        ..DriverConfig::default()
    };
    let (compiled, report) = compile_checked(&l, &m, &cfg).expect("degradation must succeed");
    assert!(!report.clean());
    assert_eq!(report.requested, Strategy::Selective);
    assert_eq!(report.delivered, Strategy::Full);
    assert_eq!(compiled.strategy, Strategy::Full);
    let fb = &report.fallbacks[0];
    assert_eq!(fb.from, Strategy::Selective);
    assert_eq!(fb.to, Strategy::Full);
    assert!(
        matches!(
            fb.reason,
            CompileError::BudgetExhausted { pass: Pass::Partition, strategy: Strategy::Selective, .. }
        ),
        "{}",
        fb.reason
    );
    assert_eq!(fb.reason.pass(), Pass::Partition);
    assert_eq!(fb.reason.loop_name(), "sample");
    assert!(fb.reason.to_string().contains("budget exhausted"), "{}", fb.reason);
}

#[test]
fn degradation_disabled_returns_the_budget_error_directly() {
    let l = sample();
    let m = MachineConfig::paper_default();
    let cfg = DriverConfig {
        strategy: Strategy::Selective,
        selective: SelectiveConfig { max_moves: Some(1), ..SelectiveConfig::default() },
        degrade: false,
        ..DriverConfig::default()
    };
    let err = compile_checked(&l, &m, &cfg).expect_err("no ladder, so the error surfaces");
    assert_eq!(err.pass(), Pass::Partition);
    // Provenance is part of the rendered message: strategy/pass prefix.
    assert!(err.to_string().starts_with("[selective/partition]"), "{err}");
}

#[test]
fn corrupted_loop_surfaces_typed_error_with_input_provenance() {
    // Corrupt the IR the way a buggy upstream pass would (a forward
    // intra-iteration reference) and push it through the hardened driver:
    // a typed CompileError with provenance and a dump, not a panic.
    let mut bad = sample();
    bad.ops[1].operands[0] = Operand::def(selvec::ir::OpId(3));
    let m = MachineConfig::paper_default();
    let err = compile_checked(&bad, &m, &DriverConfig::default())
        .expect_err("corrupted IR must be rejected");
    assert_eq!(err.pass(), Pass::Input);
    assert_eq!(err.loop_name(), "sample");
    let CompileError::InvalidInput { dump, .. } = &err else {
        panic!("expected InvalidInput, got {err}");
    };
    assert!(dump.contains("sample"), "dump names the loop:\n{dump}");
}

#[test]
fn corrupted_operand_changes_the_functional_result() {
    // Swap the add's operands for a subtract: the interpreter must compute
    // a different y — the equivalence harness is sensitive to real bugs.
    let l = sample();
    let mut broken = l.clone();
    broken.ops[2].opcode.kind = OpKind::Sub;
    let mut mem_good = Memory::for_arrays(&l.arrays);
    let mut mem_bad = mem_good.clone();
    execute_loop(&l, &mut mem_good, 0..40);
    execute_loop(&broken, &mut mem_bad, 0..40);
    let differs = (0..40).any(|e| !mem_good.array(1)[e].approx_eq(mem_bad.array(1)[e]));
    assert!(differs);
}

#[test]
fn pipelined_executor_detects_premature_reads() {
    // Corrupt a schedule so the store issues in cycle 0, before the value
    // it stores exists: the pipelined executor panics rather than
    // fabricating a value.
    let m = MachineConfig::paper_default();
    let mut b = LoopBuilder::new("carrybreak");
    let x = b.array("x", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let add = b.bin(
        OpKind::Add,
        ScalarType::F64,
        Operand::def(lx),
        Operand::carried(lx, 2),
    );
    let st = b.store(x, 1, 16, add);
    let l2 = b.finish();
    let g2 = DepGraph::build(&l2);
    let sched = selvec::modsched::modulo_schedule(&l2, &g2, &m).unwrap();
    assert!(sched.times[add.index()] > 0, "the add waits for the load");
    let mut sched_wrong = sched.clone();
    sched_wrong.times[st.index()] = 0;
    let mut mem = Memory::for_arrays(&l2.arrays);
    let result = std::panic::catch_unwind(move || {
        execute_pipelined(&l2, &sched_wrong, &mut mem, 16)
    });
    assert!(result.is_err(), "premature read must panic");
}

#[test]
fn verifier_rejects_mutated_loops() {
    use selvec::ir::VerifyError;
    let l = sample();
    // Forward intra-iteration reference.
    let mut bad = l.clone();
    bad.ops[1].operands[0] = Operand::def(selvec::ir::OpId(3));
    assert!(matches!(bad.verify(), Err(VerifyError::UseOfNonValue { .. })));
    // Dangling array.
    let mut bad = l.clone();
    bad.arrays.pop();
    assert!(matches!(bad.verify(), Err(VerifyError::DanglingArray { .. })));
}
