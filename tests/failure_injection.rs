//! Failure injection: deliberately corrupt intermediate artifacts and
//! assert the checking layers catch them. A validator that never fires is
//! indistinguishable from no validator.

use selvec::analysis::DepGraph;
use selvec::core::{compile, Strategy};
use selvec::ir::{LoopBuilder, OpKind, Operand, ScalarType};
use selvec::machine::MachineConfig;
use selvec::sim::{
    execute_loop, execute_pipelined, validate_schedule, Memory, ValidationError,
};
use selvec::vectorize::transform;

fn sample() -> selvec::ir::Loop {
    let mut b = LoopBuilder::new("sample");
    b.trip(40);
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let m = b.fmul(lx, lx);
    let a = b.fadd(m, lx);
    b.store(y, 1, 0, a);
    b.finish()
}

#[test]
fn shifting_a_consumer_breaks_validation() {
    let l = sample();
    let m = MachineConfig::paper_default();
    let c = compile(&l, &m, Strategy::ModuloOnly).unwrap();
    let seg = &c.segments[0];
    let g = DepGraph::build(&seg.looop);
    let mut s = seg.schedule.clone();
    // Pull every op to cycle 0: the multiply now issues before its load
    // completes.
    for t in s.times.iter_mut() {
        *t = 0;
    }
    assert!(matches!(
        validate_schedule(&seg.looop, &g, &m, &s),
        Err(ValidationError::DependenceViolated { .. })
            | Err(ValidationError::ResourceConflict { .. })
    ));
}

#[test]
fn duplicating_an_assignment_breaks_validation() {
    let l = sample();
    let m = MachineConfig::paper_default();
    let c = compile(&l, &m, Strategy::ModuloOnly).unwrap();
    let seg = &c.segments[0];
    let g = DepGraph::build(&seg.looop);
    let mut s = seg.schedule.clone();
    // Give op 1 op 0's functional units and time: double booking.
    s.assignments[1] = s.assignments[0].clone();
    s.times[1] = s.times[0];
    assert!(validate_schedule(&seg.looop, &g, &m, &s).is_err());
}

#[test]
fn illegal_partition_is_rejected_by_the_transformer() {
    // A distance-1 memory recurrence: vectorizing it must panic (the
    // transformer asserts legality invariants).
    let mut b = LoopBuilder::new("rec");
    let a = b.array("a", ScalarType::F64, 64);
    let la = b.load(a, 1, 0);
    let n = b.fneg(la);
    b.store(a, 1, 1, n);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let result = std::panic::catch_unwind(|| {
        // Vector consumer of a carried use at distance 1 (not a multiple
        // of VL) trips the transformer's assertion.
        let mut b2 = LoopBuilder::new("carried");
        let x = b2.array("x", ScalarType::F64, 64);
        let lx = b2.load(x, 1, 0);
        let u = b2.bin(
            OpKind::Add,
            ScalarType::F64,
            Operand::def(lx),
            Operand::carried(lx, 1),
        );
        b2.store(x, 1, 8, u);
        let l2 = b2.finish();
        transform(&l2, &m, &vec![true; l2.ops().len()])
    });
    assert!(result.is_err(), "misaligned carried use must be rejected");
    let _ = l;
}

#[test]
fn non_unit_stride_vector_mem_is_rejected() {
    let mut b = LoopBuilder::new("strided");
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, 2, 0);
    b.store(y, 1, 0, lx);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let result = std::panic::catch_unwind(|| transform(&l, &m, &vec![true; l.ops().len()]));
    assert!(result.is_err(), "strided vector memory must be rejected");
}

#[test]
fn corrupted_operand_changes_the_functional_result() {
    // Swap the add's operands for a subtract: the interpreter must compute
    // a different y — the equivalence harness is sensitive to real bugs.
    let l = sample();
    let mut broken = l.clone();
    broken.ops[2].opcode.kind = OpKind::Sub;
    let mut mem_good = Memory::for_arrays(&l.arrays);
    let mut mem_bad = mem_good.clone();
    execute_loop(&l, &mut mem_good, 0..40);
    execute_loop(&broken, &mut mem_bad, 0..40);
    let differs = (0..40).any(|e| !mem_good.array(1)[e].approx_eq(mem_bad.array(1)[e]));
    assert!(differs);
}

#[test]
fn pipelined_executor_detects_premature_reads() {
    // Corrupt a schedule so the store issues in cycle 0, before the value
    // it stores exists: the pipelined executor panics rather than
    // fabricating a value.
    let m = MachineConfig::paper_default();
    let mut b = LoopBuilder::new("carrybreak");
    let x = b.array("x", ScalarType::F64, 64);
    let lx = b.load(x, 1, 0);
    let add = b.bin(
        OpKind::Add,
        ScalarType::F64,
        Operand::def(lx),
        Operand::carried(lx, 2),
    );
    let st = b.store(x, 1, 16, add);
    let l2 = b.finish();
    let g2 = DepGraph::build(&l2);
    let sched = selvec::modsched::modulo_schedule(&l2, &g2, &m).unwrap();
    assert!(sched.times[add.index()] > 0, "the add waits for the load");
    let mut sched_wrong = sched.clone();
    sched_wrong.times[st.index()] = 0;
    let mut mem = Memory::for_arrays(&l2.arrays);
    let result = std::panic::catch_unwind(move || {
        execute_pipelined(&l2, &sched_wrong, &mut mem, 16)
    });
    assert!(result.is_err(), "premature read must panic");
}

#[test]
fn verifier_rejects_mutated_loops() {
    use selvec::ir::VerifyError;
    let l = sample();
    // Forward intra-iteration reference.
    let mut bad = l.clone();
    bad.ops[1].operands[0] = Operand::def(selvec::ir::OpId(3));
    assert!(matches!(bad.verify(), Err(VerifyError::UseOfNonValue { .. })));
    // Dangling array.
    let mut bad = l.clone();
    bad.arrays.pop();
    assert!(matches!(bad.verify(), Err(VerifyError::DanglingArray { .. })));
}
