//! Integration test: the paper's Figure 1 must reproduce exactly.

use selvec::core::{compile, Strategy};
use selvec::machine::MachineConfig;
use selvec::sim::assert_equivalent;
use selvec::workloads::figure1_dot_product;

#[test]
fn figure1_iis_match_paper_exactly() {
    let machine = MachineConfig::figure1();
    let looop = figure1_dot_product();
    let expected = [
        (Strategy::ModuloNoUnroll, 2.0), // Figure 1(c)
        (Strategy::Traditional, 3.0),    // Figure 1(d): 2.0 vector + 1.0 scalar
        (Strategy::Full, 1.5),           // Figure 1(e)
        (Strategy::Selective, 1.0),      // Figure 1(f)
    ];
    for (strategy, ii) in expected {
        let compiled = compile(&looop, &machine, strategy).expect("schedulable");
        assert_eq!(
            compiled.ii_per_original_iteration(),
            ii,
            "II mismatch under {strategy}"
        );
        assert_equivalent(&looop, &compiled);
    }
}

#[test]
fn figure1_selective_vectorizes_one_load_and_the_multiply() {
    let machine = MachineConfig::figure1();
    let looop = figure1_dot_product();
    let compiled = compile(&looop, &machine, Strategy::Selective).unwrap();
    let p = compiled.partition.expect("selective records its partition");
    // The paper: vectorizing one load and the multiply fills all three
    // issue slots each cycle with at most one vector op per cycle.
    assert_eq!(p.cost, 2);
    assert_eq!(p.partition.iter().filter(|&&v| v).count(), 2);
    assert!(p.partition[2], "the multiply is in the vector partition");
    assert!(!p.partition[3], "the reduction stays scalar");
}

#[test]
fn figure1_total_cycle_ordering() {
    let machine = MachineConfig::figure1();
    let looop = figure1_dot_product();
    let cycles: Vec<u64> = [
        Strategy::Selective,
        Strategy::Full,
        Strategy::ModuloNoUnroll,
        Strategy::Traditional,
    ]
    .iter()
    .map(|&s| compile(&looop, &machine, s).unwrap().total_cycles(&machine))
    .collect();
    assert!(
        cycles.windows(2).all(|w| w[0] < w[1]),
        "expected strictly increasing cycles: {cycles:?}"
    );
}
