//! Integration test: the evaluation tables keep the paper's shape.

use selvec::core::SelectiveConfig;
use selvec::machine::{AlignmentPolicy, MachineConfig};
use selvec::workloads::all_benchmarks;
use sv_bench_shape::*;

/// A tiny local re-implementation of the harness aggregation so the root
/// tests don't depend on the bench crate's internals. Loop compilations
/// are independent, so they fan out over the deterministic work pool —
/// the in-order merge makes the sums (and thus the asserted ratios)
/// identical to a serial walk.
mod sv_bench_shape {
    use selvec::core::parallel::{default_jobs, run_ordered};
    use selvec::core::{compile_with, SelectiveConfig, Strategy};
    use selvec::machine::MachineConfig;
    use selvec::workloads::BenchmarkSuite;

    pub fn suite_speedup(
        suite: &BenchmarkSuite,
        m: &MachineConfig,
        cfg: &SelectiveConfig,
        strategy: Strategy,
    ) -> f64 {
        let cycles = run_ordered(&suite.loops, default_jobs(), |_, l| {
            let base =
                compile_with(l, m, Strategy::ModuloOnly, cfg).unwrap().total_cycles(m);
            let s = compile_with(l, m, strategy, cfg).unwrap().total_cycles(m);
            (base, s)
        });
        let base: u64 = cycles.iter().map(|c| c.0).sum();
        let s: u64 = cycles.iter().map(|c| c.1).sum();
        base as f64 / s as f64
    }

    pub use selvec::core::Strategy as S;
}

#[test]
fn table2_shape_holds() {
    let m = MachineConfig::paper_default();
    let cfg = SelectiveConfig::default();
    let mut selective_product = 1.0f64;
    let mut below_par = 0;
    for suite in all_benchmarks() {
        let t = suite_speedup(&suite, &m, &cfg, S::Traditional);
        let f = suite_speedup(&suite, &m, &cfg, S::Full);
        let s = suite_speedup(&suite, &m, &cfg, S::Selective);
        // Ordering: traditional ≤ full ≤ selective (small tolerance for
        // scheduling noise).
        assert!(t <= f + 0.02, "{}: traditional {t} > full {f}", suite.name);
        assert!(f <= s + 0.02, "{}: full {f} > selective {s}", suite.name);
        // Distribution never wins on this machine.
        assert!(t < 1.0, "{}: traditional {t} >= 1", suite.name);
        // Selective never loses noticeably.
        assert!(s > 0.93, "{}: selective {s}", suite.name);
        selective_product *= s;
        if s < 1.05 {
            below_par += 1;
        }
    }
    let geo = selective_product.powf(1.0 / 9.0);
    assert!(
        geo > 1.05 && geo < 1.25,
        "selective geometric mean {geo} out of the paper's ballpark"
    );
    // Some benchmarks barely profit (the paper's nasa7/hydro2d/apsi/turb3d
    // cluster near 1.0).
    assert!(below_par >= 2, "expected ≥2 near-par benchmarks, got {below_par}");
}

#[test]
fn table4_ignoring_communication_degrades() {
    let m = MachineConfig::paper_default();
    let considered = SelectiveConfig::default();
    let ignored = SelectiveConfig { account_communication: false, ..Default::default() };
    let mut degraded = 0;
    for suite in all_benchmarks() {
        let c = suite_speedup(&suite, &m, &considered, S::Selective);
        let i = suite_speedup(&suite, &m, &ignored, S::Selective);
        assert!(i <= c + 1e-9, "{}: ignored {i} beats considered {c}", suite.name);
        if i < c - 0.01 {
            degraded += 1;
        }
    }
    assert!(degraded >= 6, "only {degraded}/9 benchmarks degraded");
}

#[test]
fn table5_alignment_never_hurts_and_sometimes_helps() {
    let misaligned = MachineConfig::paper_default();
    let mut aligned = MachineConfig::paper_default();
    aligned.alignment = AlignmentPolicy::AssumeAligned;
    let cfg = SelectiveConfig::default();
    let mut helped = 0;
    for suite in all_benchmarks() {
        let mi = suite_speedup(&suite, &misaligned, &cfg, S::Selective);
        let al = suite_speedup(&suite, &aligned, &cfg, S::Selective);
        assert!(al >= mi - 0.02, "{}: aligned {al} < misaligned {mi}", suite.name);
        if al > mi + 0.01 {
            helped += 1;
        }
    }
    assert!(helped >= 3, "alignment helped only {helped}/9 benchmarks");
}
