//! Data-driven tests over the textual loop fixtures in `examples/loops/`:
//! each file must parse, compile under every strategy on both machines,
//! and stay functionally equivalent to its source.

use selvec::core::{compile, Strategy};
use selvec::ir::{loop_from_source, parse_loop};
use selvec::machine::MachineConfig;
use selvec::sim::{assert_equivalent, has_register_state_across_cleanup};

fn fixtures() -> Vec<(String, selvec::ir::Loop)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/loops");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("fixture directory") {
        let path = entry.expect("entry").path();
        let ext = path.extension().and_then(|e| e.to_str());
        let text = match ext {
            Some("svl") | Some("sl") => {
                std::fs::read_to_string(&path).expect("readable fixture")
            }
            _ => continue,
        };
        // `.svl` is the low-level IR text; `.sl` the expression syntax.
        let l = match ext {
            Some("svl") => parse_loop(&text),
            _ => loop_from_source(&text),
        }
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        out.push((path.display().to_string(), l));
    }
    assert!(out.len() >= 5, "expected several fixtures, found {}", out.len());
    out
}

#[test]
fn all_fixtures_compile_and_stay_equivalent() {
    for (name, src) in fixtures() {
        let mut l = src.clone();
        l.invocations = 1;
        if has_register_state_across_cleanup(&l) {
            l.trip.count &= !3;
        }
        for machine in [MachineConfig::paper_default(), MachineConfig::figure1()] {
            for strategy in Strategy::ALL {
                let compiled = compile(&l, &machine, strategy)
                    .unwrap_or_else(|e| panic!("{name} under {strategy}: {e}"));
                assert_equivalent(&l, &compiled);
            }
        }
    }
}

#[test]
fn fixtures_round_trip_through_text() {
    for (name, l) in fixtures() {
        let reparsed = parse_loop(&l.to_string())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(l, reparsed, "{name}");
    }
}

#[test]
fn all_workload_loops_round_trip_through_text() {
    for suite in selvec::workloads::all_benchmarks() {
        for l in &suite.loops {
            let reparsed = parse_loop(&l.to_string())
                .unwrap_or_else(|e| panic!("{}: {e}", l.name));
            assert_eq!(*l, reparsed, "{}", l.name);
        }
    }
}
