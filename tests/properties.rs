//! Property-based tests: random loops through the whole pipeline.

use proptest::prelude::*;
use selvec::analysis::{brute_force_mem_deps, mem_dependences, DepGraph, Distance};
use selvec::core::{compile, partition_ops, SelectiveConfig, Strategy};
use selvec::ir::{ArrayId, MemRef};
use selvec::machine::MachineConfig;
use selvec::modsched::{allocate_rotating, validate_assignment};
use selvec::sim::{
    assert_equivalent, has_register_state_across_cleanup, validate_schedule,
};
use selvec::workloads::{synth_loop, SynthProfile};

fn random_loop(seed: u64) -> selvec::ir::Loop {
    let mut l = synth_loop("prop", &SynthProfile::broad(), seed);
    l.invocations = 1;
    if has_register_state_across_cleanup(&l) {
        l.trip.count = (l.trip.count & !3).max(4);
    }
    l
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy preserves the source loop's semantics.
    #[test]
    fn transforms_preserve_semantics(seed in any::<u64>()) {
        let l = random_loop(seed);
        let machine = MachineConfig::paper_default();
        for strategy in Strategy::ALL {
            let compiled = compile(&l, &machine, strategy).unwrap();
            assert_equivalent(&l, &compiled);
        }
    }

    /// Every schedule respects dependences and resources, and II is never
    /// below its lower bounds.
    #[test]
    fn schedules_are_valid(seed in any::<u64>()) {
        let l = random_loop(seed);
        let machine = MachineConfig::paper_default();
        for strategy in Strategy::ALL {
            let compiled = compile(&l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let g = DepGraph::build(&seg.looop);
                validate_schedule(&seg.looop, &g, &machine, &seg.schedule).unwrap();
                prop_assert!(seg.schedule.ii >= seg.schedule.resmii.max(seg.schedule.recmii));
            }
        }
    }

    /// The partitioner never returns a configuration costlier than either
    /// of its seeds (all-scalar or full vectorization), and its cost
    /// predicts the scheduled loop's ResMII.
    #[test]
    fn partitioner_cost_is_sane(seed in any::<u64>()) {
        let l = random_loop(seed);
        let machine = MachineConfig::paper_default();
        let g = DepGraph::build(&l);
        let r = partition_ops(&l, &g, &machine, &SelectiveConfig::default());
        let sel = compile(&l, &machine, Strategy::Selective).unwrap();
        let base = compile(&l, &machine, Strategy::ModuloOnly).unwrap();
        let full = compile(&l, &machine, Strategy::Full).unwrap();
        // The partitioner's bin high-water mark IS the transformed loop's
        // greedy ResMII.
        prop_assert_eq!(r.cost, sel.segments[0].schedule.resmii);
        prop_assert!(
            sel.segments[0].schedule.resmii <= base.segments[0].schedule.resmii
        );
        prop_assert!(
            sel.segments[0].schedule.resmii <= full.segments[0].schedule.resmii
        );
    }

    /// Subscript dependence testing agrees with brute-force enumeration of
    /// the iteration space.
    #[test]
    fn dependence_tests_match_oracle(
        s1 in -3i64..=3,
        o1 in -4i64..=4,
        w1 in 1u32..=2,
        s2 in -3i64..=3,
        o2 in -4i64..=4,
        w2 in 1u32..=2,
    ) {
        let a = MemRef { array: ArrayId(0), stride: s1, offset: o1, width: w1 };
        let b = MemRef { array: ArrayId(0), stride: s2, offset: o2, width: w2 };
        let oracle = brute_force_mem_deps(&a, &b, 20);
        let analytic = mem_dependences(&a, &b, 1 << 20);
        let star = analytic.contains(&Distance::Star);
        let exact: std::collections::BTreeSet<u32> = analytic
            .iter()
            .filter_map(|d| match d {
                Distance::Exact(e) => Some(*e),
                Distance::Far | Distance::Star => None,
            })
            .collect();
        if star {
            // Conservative answers may over-approximate, never miss.
            prop_assert!(oracle.iter().all(|d| *d < 20));
        } else {
            // Every oracle hit must be reported exactly (the window 20 is
            // below FAR_BOUND, so Far never hides a short distance); the
            // analysis may additionally see dependences whose witness
            // iteration lies outside the oracle's 20-iteration window.
            let exact_in: std::collections::BTreeSet<u32> =
                exact.into_iter().filter(|&d| d < 20).collect();
            prop_assert!(
                oracle.is_subset(&exact_in),
                "missed: oracle {:?} vs exact {:?}",
                oracle,
                exact_in
            );
            // And for same strides the answers are exactly the oracle.
            if s1 == s2 {
                prop_assert_eq!(&exact_in, &oracle);
            }
        }
    }

    /// The textual format round-trips every loop shape the pipeline can
    /// produce: random sources, their unrolled/vectorized forms, and the
    /// distributed loops with their expansion temporaries.
    #[test]
    fn text_format_round_trips(seed in any::<u64>()) {
        let l = random_loop(seed);
        let machine = MachineConfig::paper_default();
        let reparsed = selvec::ir::parse_loop(&l.to_string()).unwrap();
        prop_assert_eq!(&l, &reparsed);
        for strategy in Strategy::ALL {
            let compiled = compile(&l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let text = seg.looop.to_string();
                let reparsed = selvec::ir::parse_loop(&text)
                    .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
                prop_assert_eq!(&seg.looop, &reparsed);
            }
        }
    }

    /// Rotating-register allocation succeeds on the paper machine for
    /// every random loop and never aliases two live values.
    #[test]
    fn register_allocation_is_conflict_free(seed in any::<u64>()) {
        let l = random_loop(seed);
        let machine = MachineConfig::paper_default();
        for strategy in [Strategy::ModuloOnly, Strategy::Selective] {
            let compiled = compile(&l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let g = DepGraph::build(&seg.looop);
                let a = allocate_rotating(&seg.looop, &g, &machine, &seg.schedule)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(
                    validate_assignment(&seg.looop, &g, &machine, &seg.schedule, &a),
                    None
                );
                // Usage respects the files.
                for (slot, &class) in selvec::ir::RegClass::ALL.iter().enumerate() {
                    prop_assert!(a.used[slot] <= machine.regs.size(class));
                }
            }
        }
    }

    /// The loop parser never panics, whatever the input: it returns a
    /// structured error instead.
    #[test]
    fn loop_parser_never_panics(text in ".{0,400}") {
        let _ = selvec::ir::parse_loop(&text);
    }

    /// Mutations of valid loop text also never panic (they hit deeper
    /// parser states than fully random text).
    #[test]
    fn mutated_loop_text_never_panics(seed in any::<u64>(), cut in 0usize..500, insert in ".{0,12}") {
        let l = random_loop(seed);
        let mut text = l.to_string();
        let pos = cut.min(text.len());
        while !text.is_char_boundary(pos.min(text.len())) && !text.is_empty() {
            text.pop();
        }
        let pos = pos.min(text.len());
        text.insert_str(pos, &insert);
        let _ = selvec::ir::parse_loop(&text);
    }

    /// The machine-spec parser never panics either.
    #[test]
    fn machine_spec_parser_never_panics(text in ".{0,300}") {
        let _ = MachineConfig::from_spec(&text);
    }

    /// Compilation is deterministic.
    #[test]
    fn pipeline_is_deterministic(seed in any::<u64>()) {
        let l = random_loop(seed);
        let machine = MachineConfig::paper_default();
        let a = compile(&l, &machine, Strategy::Selective).unwrap();
        let b = compile(&l, &machine, Strategy::Selective).unwrap();
        prop_assert_eq!(a.partition.unwrap().partition, b.partition.unwrap().partition);
        prop_assert_eq!(a.segments[0].schedule.times.clone(), b.segments[0].schedule.times.clone());
    }
}
