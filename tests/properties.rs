//! Property-based tests: random loops through the whole pipeline.
//!
//! Implemented over the workspace's own seeded generator
//! ([`selvec::workloads::synth_loop`] + [`selvec::workloads::SmallRng`])
//! rather than `proptest`, so the suite builds and runs in offline /
//! vendored environments with no registry access. Every case is fully
//! deterministic; a failing seed is printed in the assertion message and
//! reproduces directly.

use selvec::analysis::{brute_force_mem_deps, mem_dependences, DepGraph, Distance};
use selvec::core::{compile, partition_ops, SelectiveConfig, Strategy};
use selvec::ir::{ArrayId, MemRef};
use selvec::machine::MachineConfig;
use selvec::modsched::{allocate_rotating, validate_assignment};
use selvec::sim::{
    assert_equivalent, has_register_state_across_cleanup, validate_schedule,
};
use selvec::workloads::{synth_loop, SmallRng, SynthProfile};

const CASES: u64 = 48;

fn random_loop(seed: u64) -> selvec::ir::Loop {
    let mut l = synth_loop("prop", &SynthProfile::broad(), seed);
    l.invocations = 1;
    if has_register_state_across_cleanup(&l) {
        l.trip.count = (l.trip.count & !3).max(4);
    }
    l
}

/// Derived 64-bit case seeds, mirroring proptest's `any::<u64>()` input.
fn case_seeds(stream: u64) -> impl Iterator<Item = u64> {
    let mut rng = SmallRng::seed_from_u64(0xca5e_0000 ^ stream);
    (0..CASES).map(move |_| rng.next_u64())
}

/// Every strategy preserves the source loop's semantics.
#[test]
fn transforms_preserve_semantics() {
    let machine = MachineConfig::paper_default();
    for seed in case_seeds(1) {
        let l = random_loop(seed);
        for strategy in Strategy::ALL {
            let compiled = compile(&l, &machine, strategy)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_equivalent(&l, &compiled);
        }
    }
}

/// Every schedule respects dependences and resources, and II is never
/// below its lower bounds.
#[test]
fn schedules_are_valid() {
    let machine = MachineConfig::paper_default();
    for seed in case_seeds(2) {
        let l = random_loop(seed);
        for strategy in Strategy::ALL {
            let compiled = compile(&l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let g = DepGraph::build(&seg.looop);
                validate_schedule(&seg.looop, &g, &machine, &seg.schedule)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                assert!(
                    seg.schedule.ii >= seg.schedule.resmii.max(seg.schedule.recmii),
                    "seed {seed}"
                );
            }
        }
    }
}

/// The partitioner never returns a configuration costlier than either of
/// its seeds (all-scalar or full vectorization), and its cost predicts the
/// scheduled loop's ResMII.
#[test]
fn partitioner_cost_is_sane() {
    let machine = MachineConfig::paper_default();
    for seed in case_seeds(3) {
        let l = random_loop(seed);
        let g = DepGraph::build(&l);
        let r = partition_ops(&l, &g, &machine, &SelectiveConfig::default());
        let sel = compile(&l, &machine, Strategy::Selective).unwrap();
        let base = compile(&l, &machine, Strategy::ModuloOnly).unwrap();
        let full = compile(&l, &machine, Strategy::Full).unwrap();
        // The partitioner's bin high-water mark IS the transformed loop's
        // greedy ResMII.
        assert_eq!(r.cost, sel.segments[0].schedule.resmii, "seed {seed}");
        assert!(
            sel.segments[0].schedule.resmii <= base.segments[0].schedule.resmii,
            "seed {seed}"
        );
        assert!(
            sel.segments[0].schedule.resmii <= full.segments[0].schedule.resmii,
            "seed {seed}"
        );
    }
}

/// Subscript dependence testing agrees with brute-force enumeration of the
/// iteration space — exhaustively over the whole small-parameter grid the
/// proptest version only sampled.
#[test]
fn dependence_tests_match_oracle() {
    let params: Vec<(i64, i64, u32)> = (-3..=3)
        .flat_map(|s| (-4..=4).flat_map(move |o| [1u32, 2].map(|w| (s, o, w))))
        .collect();
    for &(s1, o1, w1) in &params {
        for &(s2, o2, w2) in &params {
            let a = MemRef { array: ArrayId(0), stride: s1, offset: o1, width: w1 };
            let b = MemRef { array: ArrayId(0), stride: s2, offset: o2, width: w2 };
            let oracle = brute_force_mem_deps(&a, &b, 20);
            let analytic = mem_dependences(&a, &b, 1 << 20);
            let star = analytic.contains(&Distance::Star);
            let exact: std::collections::BTreeSet<u32> = analytic
                .iter()
                .filter_map(|d| match d {
                    Distance::Exact(e) => Some(*e),
                    Distance::Far | Distance::Star => None,
                })
                .collect();
            if star {
                // Conservative answers may over-approximate, never miss.
                assert!(oracle.iter().all(|d| *d < 20));
            } else {
                // Every oracle hit must be reported exactly (the window 20
                // is below FAR_BOUND, so Far never hides a short distance);
                // the analysis may additionally see dependences whose
                // witness iteration lies outside the oracle's window.
                let exact_in: std::collections::BTreeSet<u32> =
                    exact.into_iter().filter(|&d| d < 20).collect();
                assert!(
                    oracle.is_subset(&exact_in),
                    "({s1},{o1},{w1})x({s2},{o2},{w2}) missed: oracle {oracle:?} vs exact {exact_in:?}",
                );
                // And for same strides the answers are exactly the oracle.
                if s1 == s2 {
                    assert_eq!(exact_in, oracle, "({s1},{o1},{w1})x({s2},{o2},{w2})");
                }
            }
        }
    }
}

/// The textual format round-trips every loop shape the pipeline can
/// produce: random sources, their unrolled/vectorized forms, and the
/// distributed loops with their expansion temporaries.
#[test]
fn text_format_round_trips() {
    let machine = MachineConfig::paper_default();
    for seed in case_seeds(4) {
        let l = random_loop(seed);
        let reparsed = selvec::ir::parse_loop(&l.to_string()).unwrap();
        assert_eq!(l, reparsed, "seed {seed}");
        for strategy in Strategy::ALL {
            let compiled = compile(&l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let text = seg.looop.to_string();
                let reparsed = selvec::ir::parse_loop(&text)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
                assert_eq!(seg.looop, reparsed, "seed {seed}");
            }
        }
    }
}

/// Rotating-register allocation succeeds on the paper machine for every
/// random loop and never aliases two live values.
#[test]
fn register_allocation_is_conflict_free() {
    let machine = MachineConfig::paper_default();
    for seed in case_seeds(5) {
        let l = random_loop(seed);
        for strategy in [Strategy::ModuloOnly, Strategy::Selective] {
            let compiled = compile(&l, &machine, strategy).unwrap();
            for seg in &compiled.segments {
                let g = DepGraph::build(&seg.looop);
                let a = allocate_rotating(&seg.looop, &g, &machine, &seg.schedule)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                assert_eq!(
                    validate_assignment(&seg.looop, &g, &machine, &seg.schedule, &a),
                    None,
                    "seed {seed}"
                );
                // Usage respects the files.
                for (slot, &class) in selvec::ir::RegClass::ALL.iter().enumerate() {
                    assert!(a.used[slot] <= machine.regs.size(class), "seed {seed}");
                }
            }
        }
    }
}

/// Random text of the given length alphabet-weighted toward the tokens the
/// loop format uses, so mutations reach deep parser states.
fn random_text(rng: &mut SmallRng, max_len: usize) -> String {
    const ALPHABET: &[u8] =
        b"loop arysticenv01234567890.:=+-*/[]{}()<>#@\n\t \"\\fxq";
    let len = rng.index(max_len + 1);
    (0..len).map(|_| ALPHABET[rng.index(ALPHABET.len())] as char).collect()
}

/// The loop parser never panics, whatever the input: it returns a
/// structured error instead.
#[test]
fn loop_parser_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xf00d);
    for _ in 0..400 {
        let text = random_text(&mut rng, 400);
        let _ = selvec::ir::parse_loop(&text);
    }
}

/// Mutations of valid loop text also never panic (they hit deeper parser
/// states than fully random text).
#[test]
fn mutated_loop_text_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xbead);
    for seed in case_seeds(6) {
        let l = random_loop(seed);
        let mut text = l.to_string();
        let pos = rng.index(500).min(text.len());
        while !text.is_char_boundary(pos.min(text.len())) && !text.is_empty() {
            text.pop();
        }
        let pos = pos.min(text.len());
        let insert = random_text(&mut rng, 12);
        text.insert_str(pos, &insert);
        let _ = selvec::ir::parse_loop(&text);
    }
}

/// The machine-spec parser never panics either.
#[test]
fn machine_spec_parser_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x5bec);
    for _ in 0..300 {
        let text = random_text(&mut rng, 300);
        let _ = MachineConfig::from_spec(&text);
    }
}

/// Compilation is deterministic.
#[test]
fn pipeline_is_deterministic() {
    let machine = MachineConfig::paper_default();
    for seed in case_seeds(7) {
        let l = random_loop(seed);
        let a = compile(&l, &machine, Strategy::Selective).unwrap();
        let b = compile(&l, &machine, Strategy::Selective).unwrap();
        assert_eq!(
            a.partition.unwrap().partition,
            b.partition.unwrap().partition,
            "seed {seed}"
        );
        assert_eq!(a.segments[0].schedule.times, b.segments[0].schedule.times, "seed {seed}");
    }
}
