//! Integration tests for the §6 extensions: widened scheduling windows,
//! pressure-aware partitioning, and modulo variable expansion.

use selvec::core::{compile, compile_with, SelectiveConfig, Strategy};
use selvec::ir::{LoopBuilder, ScalarType};
use selvec::machine::MachineConfig;
use selvec::sim::assert_equivalent;

fn triad(trip: u64) -> selvec::ir::Loop {
    let mut b = LoopBuilder::new("triad");
    b.trip(trip);
    let x = b.array("x", ScalarType::F64, trip + 16);
    let y = b.array("y", ScalarType::F64, trip + 16);
    let z = b.array("z", ScalarType::F64, trip + 16);
    let a = b.live_in("a", ScalarType::F64);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let ax = b.fmul_li(a, lx);
    let s = b.fadd(ax, ly);
    b.store(z, 1, 0, s);
    b.finish()
}

#[test]
fn widened_window_beats_selective_on_memory_bound_triad() {
    let l = triad(3000);
    let m = MachineConfig::paper_default();
    let sel = compile(&l, &m, Strategy::Selective).unwrap();
    let wid = compile(&l, &m, Strategy::Widened).unwrap();
    assert_equivalent(&l, &wid);
    // Zero communication lets the window reach II 1.0 where the
    // within-iteration partition is stuck at the memory bound.
    assert!(wid.ii_per_original_iteration() < sel.ii_per_original_iteration());
    assert_eq!(wid.segments[0].looop.iter_scale, m.vector_length + 1);
}

#[test]
fn widened_window_covers_remainders() {
    // Trip 3001 over a window of 3 leaves one remainder iteration.
    let l = triad(3001);
    let m = MachineConfig::paper_default();
    let wid = compile(&l, &m, Strategy::Widened).unwrap();
    assert_eq!(wid.segments[0].looop.remainder_iterations(), 1);
    assert!(wid.segments[0].cleanup.is_some());
    assert_equivalent(&l, &wid);
}

#[test]
fn widened_window_falls_back_on_reductions() {
    let mut b = LoopBuilder::new("dot");
    b.trip(100);
    let x = b.array("x", ScalarType::F64, 128);
    let lx = b.load(x, 1, 0);
    b.reduce_add(lx);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    let wid = compile(&l, &m, Strategy::Widened).unwrap();
    let base = compile(&l, &m, Strategy::ModuloOnly).unwrap();
    // Ineligible: identical to the unrolled baseline.
    assert_eq!(
        wid.ii_per_original_iteration(),
        base.ii_per_original_iteration()
    );
    assert_equivalent(&l, &wid);
}

#[test]
fn pressure_aware_partitioning_never_costs_ii() {
    // The pressure term only breaks ties, so the bin high-water mark of
    // the chosen configuration must be unchanged.
    let m = MachineConfig::paper_default();
    let plain = SelectiveConfig::default();
    let aware = SelectiveConfig { pressure_aware: true, ..Default::default() };
    for suite in selvec::workloads::all_benchmarks().iter().take(3) {
        for src in suite.loops.iter().take(8) {
            // Remainder-free trip: carried register state does not flow
            // into cleanup loops in the simulator (see sv-sim docs).
            let mut l = src.clone();
            l.trip.count = (l.trip.count.min(256) & !3).max(4);
            l.invocations = 1;
            let a = compile_with(&l, &m, Strategy::Selective, &plain).unwrap();
            let b = compile_with(&l, &m, Strategy::Selective, &aware).unwrap();
            assert_eq!(
                a.partition.as_ref().unwrap().cost,
                b.partition.as_ref().unwrap().cost,
                "{}",
                l.name
            );
            assert_equivalent(&l, &b);
        }
    }
}

#[test]
fn mve_factor_reported_on_all_schedules() {
    let l = triad(1000);
    let m = MachineConfig::paper_default();
    for strategy in Strategy::ALL {
        let c = compile(&l, &m, strategy).unwrap();
        for seg in &c.segments {
            assert!(seg.schedule.mve_factor >= 1);
            // MVE never needs more copies than there are stages.
            assert!(
                seg.schedule.mve_factor <= seg.schedule.stage_count,
                "{strategy}: mve {} > stages {}",
                seg.schedule.mve_factor,
                seg.schedule.stage_count
            );
        }
    }
}

#[test]
fn vector_length_four_machine_works_end_to_end() {
    let mut m = MachineConfig::paper_default();
    m.vector_length = 4;
    let l = triad(1003); // remainder 3 under ×4 unroll
    for strategy in Strategy::ALL {
        let c = compile(&l, &m, strategy).unwrap();
        assert_equivalent(&l, &c);
    }
    // Longer vectors shift the balance toward fuller vectorization.
    let full = compile(&l, &m, Strategy::Full).unwrap();
    let base = compile(&l, &m, Strategy::ModuloOnly).unwrap();
    assert!(full.total_cycles(&m) < base.total_cycles(&m));
}

#[test]
fn reversed_copy_loop_compiles_and_matches() {
    // y[i] = x[N-1-i]: the negative-stride load stays scalar (no gather),
    // everything still works end to end.
    let n = 50i64;
    let mut b = LoopBuilder::new("reverse");
    b.trip(n as u64);
    let x = b.array("x", ScalarType::F64, 64);
    let y = b.array("y", ScalarType::F64, 64);
    let lx = b.load(x, -1, n - 1);
    b.store(y, 1, 0, lx);
    let l = b.finish();
    let m = MachineConfig::paper_default();
    for strategy in Strategy::ALL {
        let c = compile(&l, &m, strategy).unwrap();
        assert_equivalent(&l, &c);
    }
}

#[test]
fn tiny_trip_counts_run_entirely_in_cleanup() {
    // trip 1 with VL 2: the main transformed loop executes zero
    // iterations; the cleanup loop does all the work.
    let l = triad(1);
    let m = MachineConfig::paper_default();
    for strategy in Strategy::ALL {
        let c = compile(&l, &m, strategy).unwrap();
        assert_equivalent(&l, &c);
        // Timing stays sane (no underflow): at least the cleanup runs.
        assert!(c.total_cycles(&m) > 0);
    }
}
