//! A narrated end-to-end walkthrough of the whole compilation pipeline on
//! the paper's Figure 1 dot product: legality → partitioning → loop
//! transformation → modulo scheduling → register allocation → code layout
//! → execution.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use selvec::analysis::{vectorizable_ops, DepGraph};
use selvec::core::{partition_ops, SelectiveConfig};
use selvec::ir::RegClass;
use selvec::machine::MachineConfig;
use selvec::modsched::{allocate_rotating, emit_flat, modulo_schedule};
use selvec::sim::{execute_pipelined, run_source, Memory};
use selvec::vectorize::transform;
use selvec::workloads::figure1_dot_product;

fn main() {
    let machine = MachineConfig::figure1();
    let looop = figure1_dot_product();

    println!("── 1. the source loop ─────────────────────────────────────");
    println!("{looop}");

    println!("── 2. dependence analysis & legality ──────────────────────");
    let g = DepGraph::build(&looop);
    println!("{} dependence edges", g.edges().len());
    let legal = vectorizable_ops(&looop, &g, machine.vector_length);
    for (op, status) in looop.ops().iter().zip(&legal) {
        println!("  {:<28} {:?}", op.to_string(), status);
    }

    println!("\n── 3. selective vectorization (Figure 2) ──────────────────");
    let part = partition_ops(&looop, &g, &machine, &SelectiveConfig::default());
    println!(
        "cost {} over {} iterations ({} KL passes, {} probes)",
        part.cost, machine.vector_length, part.iterations, part.moves_evaluated
    );
    for (op, &v) in looop.ops().iter().zip(&part.partition) {
        println!("  {:<28} → {}", op.to_string(), if v { "VECTOR" } else { "scalar" });
    }

    println!("\n── 4. loop transformation ─────────────────────────────────");
    let t = transform(&looop, &machine, &part.partition);
    println!("{}", t.looop);

    println!("── 5. modulo scheduling (Rau) ─────────────────────────────");
    let g2 = DepGraph::build(&t.looop);
    let sched = modulo_schedule(&t.looop, &g2, &machine).expect("schedulable");
    println!(
        "II {} (ResMII {}, RecMII {}), {} stages — {} per original iteration",
        sched.ii,
        sched.resmii,
        sched.recmii,
        sched.stage_count,
        sched.ii_per_original(t.looop.iter_scale)
    );

    println!("\n── 6. rotating-register allocation ────────────────────────");
    let regs = allocate_rotating(&t.looop, &g2, &machine, &sched).expect("fits");
    for (slot, class) in RegClass::ALL.iter().enumerate() {
        if regs.used[slot] > 0 {
            println!("  {class}: {} rotating registers", regs.used[slot]);
        }
    }

    println!("\n── 7. code layout ─────────────────────────────────────────");
    print!("{}", emit_flat(&t.looop, &sched));

    println!("── 8. execution ───────────────────────────────────────────");
    let n = t.looop.executed_iterations();
    let mut mem = Memory::for_arrays(&t.looop.arrays);
    let outs = execute_pipelined(&t.looop, &sched, &mut mem, n);
    let reference = run_source(&looop);
    for o in &outs {
        let want = reference.live_outs[&o.name];
        println!(
            "  pipelined {} = {:.6}  (in-order source: {:.6}) {}",
            o.name,
            o.value.as_f64(),
            want.as_f64(),
            if o.value.approx_eq(want) { "✓" } else { "✗" }
        );
    }
    println!(
        "\n{} pipelined iterations, {} remainder for the cleanup loop",
        n,
        t.looop.remainder_iterations()
    );
}
