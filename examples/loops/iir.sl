# A first-order IIR filter: the recurrence keeps t sequential while the
# input scaling is data parallel.
loop iir 2048 x25 {
    u = gain * x[i];
    t = 0.9 * t + u;
    y[i] = t;
    energy += u * u;
}
