//! The paper's §6 future-work extension in action: widened scheduling
//! windows assign *whole iterations* to scalar or vector resources, so no
//! scalar↔vector communication is ever needed — at the cost of guaranteed
//! misalignment.
//!
//! ```text
//! cargo run --example widened_window
//! ```

use selvec::core::{compile, Strategy};
use selvec::ir::{LoopBuilder, ScalarType};
use selvec::machine::MachineConfig;
use selvec::sim::assert_equivalent;

fn main() {
    // A fully data-parallel saxpy-like kernel — the widened window's
    // eligible case.
    let mut b = LoopBuilder::new("triad");
    b.trip(3000).invocations(1);
    let x = b.array("x", ScalarType::F64, 3100);
    let y = b.array("y", ScalarType::F64, 3100);
    let z = b.array("z", ScalarType::F64, 3100);
    let a = b.live_in("a", ScalarType::F64);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let ax = b.fmul_li(a, lx);
    let s = b.fadd(ax, ly);
    b.store(z, 1, 0, s);
    let looop = b.finish();

    let machine = MachineConfig::paper_default();
    println!(
        "triad on {} (VL {}, widened window covers {} iterations)\n",
        machine.name,
        machine.vector_length,
        machine.vector_length + 1
    );
    println!(
        "{:<20} {:>8} {:>12} {:>14}",
        "technique", "II/iter", "cycles", "transfer ops"
    );
    for strategy in [
        Strategy::ModuloOnly,
        Strategy::Full,
        Strategy::Selective,
        Strategy::Widened,
    ] {
        let compiled = compile(&looop, &machine, strategy).unwrap();
        assert_equivalent(&looop, &compiled);
        // Count communication ops (loads/stores on iteration-private
        // arrays) in the generated code.
        let transfers: usize = compiled
            .segments
            .iter()
            .map(|seg| {
                seg.looop
                    .ops
                    .iter()
                    .filter(|o| {
                        o.mem
                            .map(|r| seg.looop.array(r.array).iteration_private)
                            .unwrap_or(false)
                    })
                    .count()
            })
            .sum();
        println!(
            "{:<20} {:>8.2} {:>12} {:>14}",
            strategy.to_string(),
            compiled.ii_per_original_iteration(),
            compiled.total_cycles(&machine),
            transfers
        );
    }

    println!(
        "\nThe widened window vectorizes 2 of every 3 iterations with zero\n\
         transfer instructions; its vector references are unavoidably\n\
         misaligned (the drawback §6 predicts), so it pays merge-unit time\n\
         instead of communication."
    );
}
