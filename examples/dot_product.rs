//! The paper's Figure 1, end to end: the dot product on the 3-issue toy
//! machine, showing the transformed loop and the kernel schedule each
//! technique produces.
//!
//! ```text
//! cargo run --example dot_product
//! ```

use selvec::analysis::DepGraph;
use selvec::core::{compile, Strategy};
use selvec::machine::MachineConfig;
use selvec::sim::{play_schedule, validate_schedule};
use selvec::workloads::figure1_dot_product;

fn main() {
    let machine = MachineConfig::figure1();
    let looop = figure1_dot_product();
    println!("{looop}");

    for strategy in Strategy::ALL {
        let compiled = compile(&looop, &machine, strategy).expect("schedulable");
        println!(
            "=== {strategy}: II/original-iteration = {:.2} ===",
            compiled.ii_per_original_iteration()
        );
        for seg in &compiled.segments {
            let s = &seg.schedule;
            println!(
                "segment `{}`: II {} (ResMII {}, RecMII {}), {} stages",
                seg.looop.name, s.ii, s.resmii, s.recmii, s.stage_count
            );
            // Print the kernel: one line per modulo row.
            for row in 0..s.ii {
                let ops: Vec<String> = seg
                    .looop
                    .ops
                    .iter()
                    .filter(|o| s.times[o.id.index()] % s.ii == row)
                    .map(|o| {
                        format!("{}@{}", o.opcode, s.times[o.id.index()])
                    })
                    .collect();
                println!("  row {row}: {}", ops.join("  "));
            }
            // Re-validate and play the pipeline for 1000 iterations.
            let g = DepGraph::build(&seg.looop);
            validate_schedule(&seg.looop, &g, &machine, s).expect("valid schedule");
            let n = seg.looop.executed_iterations();
            let report = play_schedule(&seg.looop, &machine, s, n).expect("playable schedule");
            println!(
                "  {n} iterations: {} cycles exact, {} analytic, {} in flight at peak",
                report.total_cycles, report.analytic_cycles, report.peak_inflight
            );
        }
        println!();
    }
}
