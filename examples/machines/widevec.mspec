# A wider vector machine: two 256-bit vector pipes with alignment hardware.
name = widevec
vector_units = 2
merge_units = 2
vector_length = 4
alignment = aligned
