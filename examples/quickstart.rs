//! Quickstart: build a loop, compile it under every technique, compare.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use selvec::core::{compile, Strategy};
use selvec::ir::{LoopBuilder, ScalarType};
use selvec::machine::MachineConfig;
use selvec::sim::{assert_equivalent, run_compiled};

fn main() {
    // daxpy: y[i] = a*x[i] + y[i], one thousand iterations.
    let mut b = LoopBuilder::new("daxpy");
    b.trip(1000).invocations(1);
    let x = b.array("x", ScalarType::F64, 1024);
    let y = b.array("y", ScalarType::F64, 1024);
    let a = b.live_in("a", ScalarType::F64);
    let lx = b.load(x, 1, 0);
    let ly = b.load(y, 1, 0);
    let ax = b.fmul_li(a, lx);
    let s = b.fadd(ax, ly);
    b.store(y, 1, 0, s);
    let looop = b.finish();

    println!("source loop:\n{looop}");

    // The paper's simulated VLIW (Table 1).
    let machine = MachineConfig::paper_default();
    println!(
        "machine: {} (issue {}, mem {}, fp {}, vector {}, VL {})\n",
        machine.name,
        machine.issue_width,
        machine.mem_units,
        machine.fp_units,
        machine.vector_units,
        machine.vector_length
    );

    println!(
        "{:<20} {:>8} {:>10} {:>12}",
        "technique", "II/iter", "stages", "total cycles"
    );
    for strategy in Strategy::ALL {
        let compiled = compile(&looop, &machine, strategy).expect("schedulable");
        // Every transformation is checked against the source semantics.
        assert_equivalent(&looop, &compiled);
        let stages: Vec<String> = compiled
            .segments
            .iter()
            .map(|s| s.schedule.stage_count.to_string())
            .collect();
        println!(
            "{:<20} {:>8.2} {:>10} {:>12}",
            strategy.to_string(),
            compiled.ii_per_original_iteration(),
            stages.join("+"),
            compiled.total_cycles(&machine)
        );
    }

    // Functional results are available too: final memory and live-outs.
    let compiled = compile(&looop, &machine, Strategy::Selective).unwrap();
    let result = run_compiled(&compiled);
    println!(
        "\nselective-compiled y[0..4] = {:?}",
        &result.memory.array(1)[..4]
            .iter()
            .map(|s| s.as_f64())
            .collect::<Vec<_>>()
    );
}
