//! A tomcatv-style stencil on the paper machine: watch the partitioner
//! split the work between scalar and vector resources, and see what
//! alignment knowledge buys.
//!
//! ```text
//! cargo run --example stencil
//! ```

use selvec::analysis::{vectorizable_ops, DepGraph};
use selvec::core::{compile, partition_ops, SelectiveConfig, Strategy};
use selvec::machine::{AlignmentPolicy, MachineConfig};
use selvec::sim::assert_equivalent;
use selvec::workloads::benchmark;

fn main() {
    let suite = benchmark("tomcatv").unwrap();
    let looop = &suite.loops[0]; // the 9-point residual stencil
    println!("{looop}");

    let machine = MachineConfig::paper_default();
    let g = DepGraph::build(looop);

    // Legality: which ops *may* be vectorized at all.
    let legal = vectorizable_ops(looop, &g, machine.vector_length);
    let legal_count = legal.iter().filter(|s| s.is_vectorizable()).count();
    println!(
        "{} of {} operations are legally vectorizable\n",
        legal_count,
        looop.ops.len()
    );

    // The partitioner's decision.
    let r = partition_ops(looop, &g, &machine, &SelectiveConfig::default());
    println!(
        "selective partition: {} ops vectorized, estimated ResMII {} per {} iterations \
         ({} KL passes, {} probes)",
        r.partition.iter().filter(|&&v| v).count(),
        r.cost,
        machine.vector_length,
        r.iterations,
        r.moves_evaluated
    );
    for op in &looop.ops {
        if r.partition[op.id.index()] {
            println!("  vector: {op}");
        }
    }
    println!();

    // What the choice is worth, and what alignment knowledge adds.
    for (label, mut m) in [
        ("misaligned (paper default)", machine.clone()),
        ("compile-time aligned", machine.clone()),
    ] {
        if label.starts_with("compile") {
            m.alignment = AlignmentPolicy::AssumeAligned;
        }
        let base = compile(looop, &m, Strategy::ModuloOnly).unwrap();
        let sel = compile(looop, &m, Strategy::Selective).unwrap();
        assert_equivalent(looop, &sel);
        println!(
            "{label}: baseline II {:.2}, selective II {:.2} → {:.2}x",
            base.ii_per_original_iteration(),
            sel.ii_per_original_iteration(),
            base.total_cycles(&m) as f64 / sel.total_cycles(&m) as f64
        );
    }
}
