//! A downstream application: architecture autotuning.
//!
//! Given a workload, search the machine-parameter space for the cheapest
//! configuration (by a crude area model) that reaches a target throughput
//! under selective vectorization — the kind of hardware/software co-design
//! loop the paper's backend cost model enables.
//!
//! ```text
//! cargo run --release --example autotuner
//! ```

use selvec::core::{compile, Strategy};
use selvec::ir::Loop;
use selvec::machine::MachineConfig;
use selvec::workloads::benchmark;

/// Crude area cost: scalar units are cheap, vector datapaths and extra
/// memory ports expensive.
fn area(m: &MachineConfig) -> u32 {
    m.issue_width
        + m.int_units
        + 2 * m.fp_units
        + 4 * m.mem_units
        + 6 * m.vector_units * m.vector_length / 2
        + 3 * m.merge_units
        + if m.non_pipelined_divide { 0 } else { 8 } // fully pipelined divider
}

fn cycles(loops: &[Loop], m: &MachineConfig) -> u64 {
    loops
        .iter()
        .map(|l| compile(l, m, Strategy::Selective).unwrap().total_cycles(m))
        .sum()
}

fn main() {
    let suite = benchmark("swim").unwrap();
    let loops: Vec<Loop> = suite.loops[..6].to_vec();

    let base = MachineConfig::paper_default();
    let base_cycles = cycles(&loops, &base);
    println!(
        "workload: first 6 loops of {} — {} cycles on the paper machine (area {})\n",
        suite.name,
        base_cycles,
        area(&base)
    );

    // Target: 25% faster than Table 1.
    let target = base_cycles * 3 / 4;
    println!("target: ≤ {target} cycles. sweeping machines...\n");

    let mut best: Option<(u32, u64, MachineConfig)> = None;
    let mut explored = 0u32;
    for mem_units in [2u32, 3, 4] {
        for fp_units in [2u32, 3, 4] {
            for vector_units in [1u32, 2] {
                for merge_units in [1u32, 2] {
                    for pipelined_div in [false, true] {
                        let mut m = base.clone();
                        m.mem_units = mem_units;
                        m.fp_units = fp_units;
                        m.vector_units = vector_units;
                        m.merge_units = merge_units;
                        m.non_pipelined_divide = !pipelined_div;
                        m.name = format!(
                            "m{mem_units}f{fp_units}v{vector_units}g{merge_units}{}",
                            if pipelined_div { "+pdiv" } else { "" }
                        );
                        explored += 1;
                        let c = cycles(&loops, &m);
                        if c <= target {
                            let a = area(&m);
                            if best.as_ref().is_none_or(|(ba, bc, _)| (a, c) < (*ba, *bc)) {
                                best = Some((a, c, m));
                            }
                        }
                    }
                }
            }
        }
    }

    match best {
        Some((a, c, m)) => {
            println!("explored {explored} machines; cheapest hitting the target:");
            println!(
                "  {}: area {a} (paper machine: {}), {c} cycles ({:.2}x faster)",
                m.name,
                area(&base),
                base_cycles as f64 / c as f64
            );
            println!(
                "  issue {} | int {} | fp {} | mem {} | vector {} | merge {} | pipelined divide: {}",
                m.issue_width,
                m.int_units,
                m.fp_units,
                m.mem_units,
                m.vector_units,
                m.merge_units,
                !m.non_pipelined_divide
            );
        }
        None => println!("no machine in the sweep reached the target"),
    }
}
