//! Architecture exploration: sweep the machine description and watch the
//! profitability of selective vectorization move — the backend cost-model
//! advantage the paper argues for. More vector units push toward full
//! vectorization; no merge unit punishes misaligned loops; free
//! communication removes the transfer penalty.
//!
//! ```text
//! cargo run --example machine_sweep
//! ```

use selvec::core::{compile, Strategy};
use selvec::machine::{CommModel, MachineConfig};
use selvec::workloads::benchmark;

fn speedup(l: &selvec::ir::Loop, m: &MachineConfig) -> (f64, f64) {
    let base = compile(l, m, Strategy::ModuloOnly).unwrap();
    let full = compile(l, m, Strategy::Full).unwrap();
    let sel = compile(l, m, Strategy::Selective).unwrap();
    let b = base.total_cycles(m) as f64;
    (b / full.total_cycles(m) as f64, b / sel.total_cycles(m) as f64)
}

fn main() {
    let suite = benchmark("swim").unwrap();
    let looop = &suite.loops[0]; // calc1: a big balanced stencil

    println!("loop `{}` ({} ops)\n", looop.name, looop.ops.len());
    println!(
        "{:<44} {:>8} {:>10}",
        "machine variant", "full", "selective"
    );

    let base = MachineConfig::paper_default();
    let mut variants: Vec<(String, MachineConfig)> = Vec::new();
    variants.push(("paper Table 1".into(), base.clone()));

    for vus in [2u32, 4] {
        let mut m = base.clone();
        m.vector_units = vus;
        m.merge_units = vus;
        variants.push((format!("{vus} vector + {vus} merge units"), m));
    }
    {
        let mut m = base.clone();
        m.mem_units = 4;
        variants.push(("4 load/store units".into(), m));
    }
    {
        let mut m = base.clone();
        m.comm = CommModel::Free;
        variants.push(("free scalar<->vector communication".into(), m));
    }
    {
        let mut m = base.clone();
        m.vector_length = 4;
        variants.push(("vector length 4 (256-bit vectors)".into(), m));
    }

    for (name, m) in &variants {
        let (f, s) = speedup(looop, m);
        println!("{name:<44} {f:>7.2}x {s:>9.2}x");
    }

    println!(
        "\nAs vector resources grow (or transfers get cheap), full vectorization\n\
         catches up with selective — the paper's observation that selective\n\
         vectorization matters most when scalar and vector throughput are\n\
         comparable (short vectors, few vector units)."
    );
}
